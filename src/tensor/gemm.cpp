#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "tensor/thread_pool.h"

namespace gtv::detail {

namespace {

constexpr std::size_t kMR = 4;    // micro-tile rows (A rows per kernel call)
constexpr std::size_t kNR = 16;   // packed sliver width (C cols per kernel call)
constexpr std::size_t kKB = 256;  // k-block: packed panel depth
constexpr std::size_t kNB = 128;  // j-panel width packed at a time
// m*k*n above which packing + register tiling pays for itself; below it the
// simple order-preserving loops win (no pack traffic, no dispatch).
constexpr std::size_t kTiledThreshold = std::size_t{1} << 15;

// The micro-kernels are stamped out twice: a portable build (whatever ISA
// the TU is compiled for, SSE2 on stock x86-64) and an AVX2 build selected
// at runtime via cpuid. Both compute identical bit patterns — the dispatch
// only changes vector width, never accumulation order.
namespace portable {
#include "tensor/gemm_kernels.inc"
}  // namespace portable

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && !defined(__AVX2__)
#define GTV_GEMM_RUNTIME_AVX2 1
#pragma GCC push_options
#pragma GCC target("avx2")
namespace avx2 {
#include "tensor/gemm_kernels.inc"
}  // namespace avx2
#pragma GCC pop_options
#endif

using KernRows = void (*)(const float*, const float*, const float*, const float*, const float*,
                          std::size_t, float*, float*, float*, float*, std::size_t);
using KernCols = void (*)(const float*, std::size_t, const float*, std::size_t, float*, float*,
                          float*, float*, std::size_t);
using KernTail = void (*)(const float*, std::size_t, const float*, std::size_t, float*,
                          std::size_t);

struct Kernels {
  KernRows rows;
  KernCols cols;
  KernTail tail;
  const char* isa;
};

const Kernels& active_kernels() {
  static const Kernels kernels = [] {
#ifdef GTV_GEMM_RUNTIME_AVX2
    if (__builtin_cpu_supports("avx2")) {
      return Kernels{&avx2::kernel_rows, &avx2::kernel_cols, &avx2::kernel_tail_row, "avx2"};
    }
#endif
    return Kernels{&portable::kernel_rows, &portable::kernel_cols, &portable::kernel_tail_row,
#if defined(__AVX2__)
                   "avx2"
#else
                   "portable"
#endif
    };
  }();
  return kernels;
}

// Packs rows [k0, k0+kn) x cols [j0, j0+jn) of row-major b (leading
// dimension ldb) into kNR-wide zero-padded slivers: sliver s holds its kn
// rows contiguously, so the micro-kernel streams it with unit stride.
void pack_panel_nn(const float* b, std::size_t ldb, std::size_t k0, std::size_t kn,
                   std::size_t j0, std::size_t jn, float* out) {
  for (std::size_t s = 0; s * kNR < jn; ++s) {
    const std::size_t jw = std::min(kNR, jn - s * kNR);
    float* dst = out + s * kn * kNR;
    const float* src = b + k0 * ldb + j0 + s * kNR;
    for (std::size_t kk = 0; kk < kn; ++kk) {
      std::memcpy(dst, src, jw * sizeof(float));
      if (jw < kNR) std::memset(dst + jw, 0, (kNR - jw) * sizeof(float));
      dst += kNR;
      src += ldb;
    }
  }
}

// Same sliver layout, but the logical operand is b^T with b stored
// (n x k, leading dimension ldb): sliver row kk holds b[j0+s*kNR+j][k0+kk].
// This small transposing pack is the only transposition gemm_nt ever does.
void pack_panel_nt(const float* b, std::size_t ldb, std::size_t k0, std::size_t kn,
                   std::size_t j0, std::size_t jn, float* out) {
  for (std::size_t s = 0; s * kNR < jn; ++s) {
    float* dst = out + s * kn * kNR;
    const std::size_t jw = std::min(kNR, jn - s * kNR);
    for (std::size_t j = 0; j < jw; ++j) {
      const float* src = b + (j0 + s * kNR + j) * ldb + k0;
      for (std::size_t kk = 0; kk < kn; ++kk) dst[kk * kNR + j] = src[kk];
    }
    for (std::size_t j = jw; j < kNR; ++j) {
      for (std::size_t kk = 0; kk < kn; ++kk) dst[kk * kNR + j] = 0.0f;
    }
  }
}

enum class AForm {
  kRows,  // a is (m x k) row-major: micro-tile reads 4 rows
  kCols,  // a is (k x m) row-major, logically a^T: micro-tile reads 4 adjacent columns
};

template <AForm AF, bool BTransposed>
void gemm_tiled(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                std::size_t n) {
  const Kernels& kern = active_kernels();
  // Per-thread scratch: the packed panel is written by the submitting thread
  // and only read by pool workers during the dispatch below.
  thread_local std::vector<float> pack_storage;
  const std::size_t panel_cols = std::min(n, kNB);
  pack_storage.resize(std::min(k, kKB) * ((panel_cols + kNR - 1) / kNR) * kNR);
  const std::size_t groups = (m + kMR - 1) / kMR;

  for (std::size_t j0 = 0; j0 < n; j0 += kNB) {
    const std::size_t jn = std::min(n, j0 + kNB) - j0;
    // k-blocks run in ascending order with a barrier between dispatches, so
    // every C element sees its contributions in ascending-k order; the
    // kernels preload C, which keeps the chain bit-identical to one pass.
    for (std::size_t k0 = 0; k0 < k; k0 += kKB) {
      const std::size_t kn = std::min(k, k0 + kKB) - k0;
      if (BTransposed) {
        pack_panel_nt(b, k, k0, kn, j0, jn, pack_storage.data());
      } else {
        pack_panel_nn(b, n, k0, kn, j0, jn, pack_storage.data());
      }
      const float* packed = pack_storage.data();
      parallel_for(groups, 4, [&, packed](std::size_t g0, std::size_t g1) {
        for (std::size_t g = g0; g < g1; ++g) {
          const std::size_t i = g * kMR;
          const std::size_t ilen = std::min(kMR, m - i);
          for (std::size_t s = 0; s * kNR < jn; ++s) {
            const std::size_t jw = std::min(kNR, jn - s * kNR);
            const float* bp = packed + s * kn * kNR;
            float* cr = c + i * n + j0 + s * kNR;
            if (ilen == kMR) {
              if (AF == AForm::kRows) {
                const float* a0 = a + i * k + k0;
                kern.rows(a0, a0 + k, a0 + 2 * k, a0 + 3 * k, bp, kn, cr, cr + n, cr + 2 * n,
                          cr + 3 * n, jw);
              } else {
                kern.cols(a + k0 * m + i, m, bp, kn, cr, cr + n, cr + 2 * n, cr + 3 * n, jw);
              }
            } else {
              for (std::size_t r = 0; r < ilen; ++r) {
                if (AF == AForm::kRows) {
                  kern.tail(a + (i + r) * k + k0, 1, bp, kn, cr + r * n, jw);
                } else {
                  kern.tail(a + k0 * m + i + r, m, bp, kn, cr + r * n, jw);
                }
              }
            }
          }
        }
      });
    }
  }
}

// --- small-shape paths: plain loops, same accumulation order ----------------

void gemm_small_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* brow = b + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_small_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = crow[j];
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

void gemm_small_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  // Outer-product over k: unit-stride reads of both a and b rows, and every
  // C element still accumulates in ascending-k order.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

bool use_tiled(std::size_t m, std::size_t k, std::size_t n) {
  return m * k * n >= kTiledThreshold && k > 0;
}

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  if (use_tiled(m, k, n)) {
    gemm_tiled<AForm::kRows, false>(a, b, c, m, k, n);
  } else {
    gemm_small_nn(a, b, c, m, k, n);
  }
}

void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  if (use_tiled(m, k, n)) {
    gemm_tiled<AForm::kRows, true>(a, b, c, m, k, n);
  } else {
    gemm_small_nt(a, b, c, m, k, n);
  }
}

void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t k,
             std::size_t n) {
  if (m == 0 || n == 0 || k == 0) return;
  if (use_tiled(m, k, n)) {
    gemm_tiled<AForm::kCols, false>(a, b, c, m, k, n);
  } else {
    gemm_small_tn(a, b, c, m, k, n);
  }
}

bool gemm_uses_tiled_path(std::size_t m, std::size_t k, std::size_t n) {
  return use_tiled(m, k, n);
}

const char* gemm_kernel_isa() { return active_kernels().isa; }

}  // namespace gtv::detail
