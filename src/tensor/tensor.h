// Dense 2-D float32 tensor with the small kernel set the GTV stack needs:
// elementwise arithmetic with row/column/scalar broadcasting, threaded
// matmul, transpose, reductions, and row gather/concat utilities used by
// the VFL Split/Concat operators.
//
// Shapes are always (rows, cols); a vector is represented as 1xC or Nx1.
// Broadcasting rule for binary ops: shapes must match, or the rhs (or lhs)
// may be 1xC (broadcast across rows), Nx1 (broadcast across columns), or
// 1x1 (scalar).
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/memory.h"
#include "tensor/rng.h"

namespace gtv {

// Element storage for Tensor. The tracking allocator charges every buffer
// to the gtv::obs memory ledger (live/peak/alloc-count gauges); build
// buffers as FloatVec when handing them to Tensor so the move constructor
// applies.
using FloatVec = std::vector<float, obs::TrackingAllocator<float>>;

class Tensor {
 public:
  Tensor() = default;
  // Zero-initialized tensor of the given shape.
  Tensor(std::size_t rows, std::size_t cols);
  Tensor(std::size_t rows, std::size_t cols, float fill);
  // Takes ownership of `values`; values.size() must equal rows * cols.
  Tensor(std::size_t rows, std::size_t cols, FloatVec values);
  // Convenience overload for plain vectors; copies into tracked storage.
  Tensor(std::size_t rows, std::size_t cols, const std::vector<float>& values);

  static Tensor zeros(std::size_t rows, std::size_t cols);
  static Tensor ones(std::size_t rows, std::size_t cols);
  static Tensor full(std::size_t rows, std::size_t cols, float value);
  static Tensor scalar(float value);
  // Row-major literal, e.g. Tensor::of({{1,2},{3,4}}).
  static Tensor of(std::initializer_list<std::initializer_list<float>> rows);
  static Tensor uniform(std::size_t rows, std::size_t cols, float lo, float hi, Rng& rng);
  static Tensor normal(std::size_t rows, std::size_t cols, float mean, float stddev, Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  float operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  // Bounds-checked access.
  float at(std::size_t r, std::size_t c) const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const FloatVec& values() const { return data_; }

  // --- elementwise / broadcasting arithmetic -------------------------------
  Tensor operator+(const Tensor& rhs) const;
  Tensor operator-(const Tensor& rhs) const;
  Tensor operator*(const Tensor& rhs) const;  // Hadamard
  Tensor operator/(const Tensor& rhs) const;
  Tensor operator-() const;
  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);

  Tensor add_scalar(float s) const;
  Tensor mul_scalar(float s) const;

  // Applies f to every element.
  Tensor map(const std::function<float(float)>& f) const;

  // --- linear algebra -------------------------------------------------------
  // Matrix product; this->cols() must equal rhs.rows(). Tiled + threaded,
  // bit-identical to the naive i-k-j reference (see tensor/gemm.h).
  Tensor matmul(const Tensor& rhs) const;
  // this * rhs^T without materializing the transpose; cols() must match
  // rhs.cols(). Bit-identical to matmul(rhs.transpose()).
  Tensor matmul_nt(const Tensor& rhs) const;
  // this^T * rhs without materializing the transpose; rows() must match
  // rhs.rows(). Bit-identical to transpose().matmul(rhs).
  Tensor matmul_tn(const Tensor& rhs) const;
  Tensor transpose() const;

  // --- reductions -----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  // Column sums -> 1 x cols.
  Tensor sum_rows() const;
  // Row sums -> rows x 1.
  Tensor sum_cols() const;
  Tensor mean_rows() const;  // 1 x cols
  Tensor mean_cols() const;  // rows x 1
  // Row-wise L2 norm -> rows x 1.
  Tensor row_norms() const;

  // --- structural -----------------------------------------------------------
  // Columns [c0, c1) as a new tensor.
  Tensor slice_cols(std::size_t c0, std::size_t c1) const;
  // Rows [r0, r1) as a new tensor.
  Tensor slice_rows(std::size_t r0, std::size_t r1) const;
  // Rows selected by index (with repetition allowed).
  Tensor gather_rows(const std::vector<std::size_t>& indices) const;
  // Horizontal concatenation; all parts must share rows().
  static Tensor concat_cols(const std::vector<Tensor>& parts);
  // Vertical concatenation; all parts must share cols().
  static Tensor concat_rows(const std::vector<Tensor>& parts);
  // Pads `left` zero columns before and `right` after.
  Tensor pad_cols(std::size_t left, std::size_t right) const;
  Tensor reshape(std::size_t rows, std::size_t cols) const;

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }
  // Max absolute elementwise difference; shapes must match.
  float max_abs_diff(const Tensor& other) const;
  bool all_finite() const;

  std::string shape_str() const;

 private:
  enum class BinOp { kAdd, kSub, kMul, kDiv };
  Tensor binary(const Tensor& rhs, BinOp op) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  FloatVec data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

}  // namespace gtv
