// Minimal persistent thread pool used to parallelize dense kernels.
//
// The pool is created lazily on first use and sized to the hardware
// concurrency (capped at 16); the GTV_THREADS environment variable
// overrides the size (GTV_THREADS=1 forces fully serial execution, useful
// for deterministic CI). parallel_for partitions [0, n) into contiguous
// chunks; the calling thread participates so small ranges stay cheap.
//
// parallel_for is reentrant: each call owns an independent job object, so
// any number of threads may issue calls concurrently (gtv-node reader
// threads, probe synthesis) without interfering. A parallel_for issued from
// *inside* a running parallel_for body is detected and executed serially on
// the calling thread — nested dispatch cannot deadlock the pool.
#pragma once

#include <cstddef>
#include <functional>

namespace gtv {

class ThreadPool {
 public:
  // Global singleton pool.
  static ThreadPool& instance();

  // Runs fn(begin, end) over a partition of [0, n). Blocks until done.
  // `grain` is the minimum chunk size; ranges smaller than `grain`
  // run inline on the calling thread without synchronization. Safe to call
  // from multiple threads at once; nested calls degrade to serial.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t worker_count() const { return workers_; }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;        // owned; opaque to keep <thread> out of the header
  std::size_t workers_;
};

// Convenience wrapper over the singleton.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace gtv
