#include "tensor/rng.h"

#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

namespace gtv {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Rng::State Rng::state() const {
  State s;
  for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
  std::memcpy(&s.spare_bits, &spare_, sizeof(s.spare_bits));
  s.has_spare = has_spare_;
  return s;
}

void Rng::set_state(const State& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  std::memcpy(&spare_, &state.spare_bits, sizeof(spare_));
  has_spare_ = state.has_spare;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  // Rejection-free bounded draw with negligible bias for n << 2^64.
  return static_cast<std::size_t>(next_u64() % n);
}

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::categorical: zero total weight");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

}  // namespace gtv
