#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "tensor/gemm.h"

namespace gtv {

namespace {

[[noreturn]] void shape_error(const std::string& what, const Tensor& a, const Tensor& b) {
  throw std::invalid_argument("Tensor::" + what + ": incompatible shapes " + a.shape_str() +
                              " vs " + b.shape_str());
}

}  // namespace

Tensor::Tensor(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor::Tensor(std::size_t rows, std::size_t cols, FloatVec values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  if (data_.size() != rows_ * cols_) {
    throw std::invalid_argument("Tensor: values size " + std::to_string(data_.size()) +
                                " does not match shape " + shape_str());
  }
}

Tensor::Tensor(std::size_t rows, std::size_t cols, const std::vector<float>& values)
    : Tensor(rows, cols, FloatVec(values.begin(), values.end())) {}

Tensor Tensor::zeros(std::size_t rows, std::size_t cols) { return Tensor(rows, cols); }
Tensor Tensor::ones(std::size_t rows, std::size_t cols) { return Tensor(rows, cols, 1.0f); }
Tensor Tensor::full(std::size_t rows, std::size_t cols, float value) {
  return Tensor(rows, cols, value);
}
Tensor Tensor::scalar(float value) { return Tensor(1, 1, value); }

Tensor Tensor::of(std::initializer_list<std::initializer_list<float>> rows) {
  const std::size_t r = rows.size();
  const std::size_t c = r == 0 ? 0 : rows.begin()->size();
  FloatVec values;
  values.reserve(r * c);
  for (const auto& row : rows) {
    if (row.size() != c) throw std::invalid_argument("Tensor::of: ragged rows");
    values.insert(values.end(), row.begin(), row.end());
  }
  return Tensor(r, c, std::move(values));
}

Tensor Tensor::uniform(std::size_t rows, std::size_t cols, float lo, float hi, Rng& rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::normal(std::size_t rows, std::size_t cols, float mean, float stddev, Rng& rng) {
  Tensor t(rows, cols);
  for (auto& v : t.data_) v = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

float Tensor::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Tensor::at(" + std::to_string(r) + "," + std::to_string(c) +
                            ") out of " + shape_str());
  }
  return (*this)(r, c);
}

Tensor Tensor::binary(const Tensor& rhs, BinOp op) const {
  auto apply = [op](float a, float b) -> float {
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kDiv: return a / b;
    }
    return 0.0f;
  };
  // Same shape: direct.
  if (same_shape(rhs)) {
    Tensor out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = apply(data_[i], rhs.data_[i]);
    return out;
  }
  // rhs broadcast over lhs.
  if (rhs.rows_ == 1 && rhs.cols_ == 1) {
    const float s = rhs.data_[0];
    Tensor out(rows_, cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = apply(data_[i], s);
    return out;
  }
  if (rhs.rows_ == 1 && rhs.cols_ == cols_) {
    Tensor out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c)
        out(r, c) = apply((*this)(r, c), rhs.data_[c]);
    return out;
  }
  if (rhs.cols_ == 1 && rhs.rows_ == rows_) {
    Tensor out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      const float s = rhs.data_[r];
      for (std::size_t c = 0; c < cols_; ++c) out(r, c) = apply((*this)(r, c), s);
    }
    return out;
  }
  // lhs broadcast over rhs (e.g. scalar - tensor).
  if (rows_ == 1 && cols_ == 1) {
    const float s = data_[0];
    Tensor out(rhs.rows_, rhs.cols_);
    for (std::size_t i = 0; i < rhs.data_.size(); ++i) out.data_[i] = apply(s, rhs.data_[i]);
    return out;
  }
  if (rows_ == 1 && cols_ == rhs.cols_) {
    Tensor out(rhs.rows_, rhs.cols_);
    for (std::size_t r = 0; r < rhs.rows_; ++r)
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) = apply(data_[c], rhs(r, c));
    return out;
  }
  if (cols_ == 1 && rows_ == rhs.rows_) {
    Tensor out(rhs.rows_, rhs.cols_);
    for (std::size_t r = 0; r < rhs.rows_; ++r) {
      const float s = data_[r];
      for (std::size_t c = 0; c < rhs.cols_; ++c) out(r, c) = apply(s, rhs(r, c));
    }
    return out;
  }
  shape_error("binary", *this, rhs);
}

Tensor Tensor::operator+(const Tensor& rhs) const { return binary(rhs, BinOp::kAdd); }
Tensor Tensor::operator-(const Tensor& rhs) const { return binary(rhs, BinOp::kSub); }
Tensor Tensor::operator*(const Tensor& rhs) const { return binary(rhs, BinOp::kMul); }
Tensor Tensor::operator/(const Tensor& rhs) const { return binary(rhs, BinOp::kDiv); }

Tensor Tensor::operator-() const {
  Tensor out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = -data_[i];
  return out;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  if (!same_shape(rhs)) {
    *this = *this + rhs;
    return *this;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  if (!same_shape(rhs)) {
    *this = *this - rhs;
    return *this;
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor Tensor::add_scalar(float s) const {
  Tensor out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + s;
  return out;
}

Tensor Tensor::mul_scalar(float s) const {
  Tensor out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

Tensor Tensor::map(const std::function<float(float)>& f) const {
  Tensor out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
  return out;
}

Tensor Tensor::matmul(const Tensor& rhs) const {
  if (cols_ != rhs.rows_) shape_error("matmul", *this, rhs);
  Tensor out(rows_, rhs.cols_);
  detail::gemm_nn(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_, rhs.cols_);
  return out;
}

Tensor Tensor::matmul_nt(const Tensor& rhs) const {
  if (cols_ != rhs.cols_) shape_error("matmul_nt", *this, rhs);
  Tensor out(rows_, rhs.rows_);
  detail::gemm_nt(data_.data(), rhs.data_.data(), out.data_.data(), rows_, cols_, rhs.rows_);
  return out;
}

Tensor Tensor::matmul_tn(const Tensor& rhs) const {
  if (rows_ != rhs.rows_) shape_error("matmul_tn", *this, rhs);
  Tensor out(cols_, rhs.cols_);
  detail::gemm_tn(data_.data(), rhs.data_.data(), out.data_.data(), cols_, rows_, rhs.cols_);
  return out;
}

Tensor Tensor::transpose() const {
  Tensor out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

float Tensor::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const {
  if (data_.empty()) throw std::logic_error("Tensor::mean of empty tensor");
  return static_cast<float>(sum() / static_cast<double>(data_.size()));
}

float Tensor::min() const {
  if (data_.empty()) throw std::logic_error("Tensor::min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  if (data_.empty()) throw std::logic_error("Tensor::max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

Tensor Tensor::sum_rows() const {
  // Accumulates in double like sum_cols: float32 accumulation drifts at
  // large row counts and skews the BatchNorm statistics built on top.
  Tensor out(1, cols_);
  std::vector<double> acc(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) acc[c] += (*this)(r, c);
  for (std::size_t c = 0; c < cols_; ++c) out.data_[c] = static_cast<float>(acc[c]);
  return out;
}

Tensor Tensor::sum_cols() const {
  Tensor out(rows_, 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c);
    out.data_[r] = static_cast<float>(acc);
  }
  return out;
}

Tensor Tensor::mean_rows() const {
  if (rows_ == 0) throw std::logic_error("Tensor::mean_rows of empty tensor");
  return sum_rows().mul_scalar(1.0f / static_cast<float>(rows_));
}

Tensor Tensor::mean_cols() const {
  if (cols_ == 0) throw std::logic_error("Tensor::mean_cols of empty tensor");
  return sum_cols().mul_scalar(1.0f / static_cast<float>(cols_));
}

Tensor Tensor::row_norms() const {
  Tensor out(rows_, 1);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      const float v = (*this)(r, c);
      acc += static_cast<double>(v) * v;
    }
    out.data_[r] = static_cast<float>(std::sqrt(acc));
  }
  return out;
}

Tensor Tensor::slice_cols(std::size_t c0, std::size_t c1) const {
  if (c0 > c1 || c1 > cols_) {
    throw std::out_of_range("Tensor::slice_cols [" + std::to_string(c0) + "," +
                            std::to_string(c1) + ") of " + shape_str());
  }
  Tensor out(rows_, c1 - c0);
  for (std::size_t r = 0; r < rows_; ++r)
    std::copy(data_.begin() + r * cols_ + c0, data_.begin() + r * cols_ + c1,
              out.data_.begin() + r * out.cols_);
  return out;
}

Tensor Tensor::slice_rows(std::size_t r0, std::size_t r1) const {
  if (r0 > r1 || r1 > rows_) {
    throw std::out_of_range("Tensor::slice_rows [" + std::to_string(r0) + "," +
                            std::to_string(r1) + ") of " + shape_str());
  }
  Tensor out(r1 - r0, cols_);
  std::copy(data_.begin() + r0 * cols_, data_.begin() + r1 * cols_, out.data_.begin());
  return out;
}

Tensor Tensor::gather_rows(const std::vector<std::size_t>& indices) const {
  Tensor out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::size_t r = indices[i];
    if (r >= rows_) throw std::out_of_range("Tensor::gather_rows index " + std::to_string(r));
    std::copy(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_,
              out.data_.begin() + i * cols_);
  }
  return out;
}

Tensor Tensor::concat_cols(const std::vector<Tensor>& parts) {
  if (parts.empty()) return Tensor();
  const std::size_t rows = parts.front().rows_;
  std::size_t cols = 0;
  for (const auto& p : parts) {
    if (p.rows_ != rows) shape_error("concat_cols", parts.front(), p);
    cols += p.cols_;
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const auto& p : parts) {
    for (std::size_t r = 0; r < rows; ++r)
      std::copy(p.data_.begin() + r * p.cols_, p.data_.begin() + (r + 1) * p.cols_,
                out.data_.begin() + r * cols + offset);
    offset += p.cols_;
  }
  return out;
}

Tensor Tensor::concat_rows(const std::vector<Tensor>& parts) {
  if (parts.empty()) return Tensor();
  const std::size_t cols = parts.front().cols_;
  std::size_t rows = 0;
  for (const auto& p : parts) {
    if (p.cols_ != cols) shape_error("concat_rows", parts.front(), p);
    rows += p.rows_;
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const auto& p : parts) {
    std::copy(p.data_.begin(), p.data_.end(), out.data_.begin() + offset);
    offset += p.data_.size();
  }
  return out;
}

Tensor Tensor::pad_cols(std::size_t left, std::size_t right) const {
  Tensor out(rows_, left + cols_ + right);
  for (std::size_t r = 0; r < rows_; ++r)
    std::copy(data_.begin() + r * cols_, data_.begin() + (r + 1) * cols_,
              out.data_.begin() + r * out.cols_ + left);
  return out;
}

Tensor Tensor::reshape(std::size_t rows, std::size_t cols) const {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Tensor::reshape to " + std::to_string(rows) + "x" +
                                std::to_string(cols) + " from " + shape_str());
  }
  Tensor out = *this;
  out.rows_ = rows;
  out.cols_ = cols;
  return out;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  if (!same_shape(other)) shape_error("max_abs_diff", *this, other);
  float worst = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

bool Tensor::all_finite() const {
  return std::all_of(data_.begin(), data_.end(), [](float v) { return std::isfinite(v); });
}

std::string Tensor::shape_str() const {
  return "(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor" << t.shape_str() << "[";
  const std::size_t max_show = 8;
  for (std::size_t r = 0; r < std::min(t.rows(), max_show); ++r) {
    os << (r == 0 ? "[" : " [");
    for (std::size_t c = 0; c < std::min(t.cols(), max_show); ++c) {
      os << t(r, c) << (c + 1 < std::min(t.cols(), max_show) ? ", " : "");
    }
    if (t.cols() > max_show) os << ", ...";
    os << "]";
    if (r + 1 < std::min(t.rows(), max_show)) os << "\n";
  }
  if (t.rows() > max_show) os << "\n ...";
  os << "]";
  return os;
}

}  // namespace gtv
