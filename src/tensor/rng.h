// Deterministic, seedable random number generation for the whole project.
//
// Every stochastic component (weight init, noise sampling, shuffling,
// dataset generation) draws from an explicitly threaded Rng so that runs
// are reproducible and the VFL shared-seed Shuffle can be expressed as
// "two parties construct the same Rng".
#pragma once

#include <cstdint>
#include <vector>

namespace gtv {

// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  // Complete stream position: the four xoshiro words plus the Box-Muller
  // spare (serialized as the double's bit pattern so restore is exact).
  // Restoring a State resumes the stream mid-flight: the next draw after
  // set_state equals the next draw the captured Rng would have produced.
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    std::uint64_t spare_bits = 0;
    bool has_spare = false;

    bool operator==(const State& other) const {
      return words[0] == other.words[0] && words[1] == other.words[1] &&
             words[2] == other.words[2] && words[3] == other.words[3] &&
             spare_bits == other.spare_bits && has_spare == other.has_spare;
    }
  };

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  State state() const;
  void set_state(const State& state);

  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);
  // Standard normal via Box-Muller (cached spare value).
  double normal();
  double normal(double mean, double stddev);
  // Sample index from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);
  // Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);
  // Split off an independent child stream (for per-worker determinism).
  Rng split();

 private:
  std::uint64_t state_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace gtv
