#include "obs/blackbox.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/thread_name.h"
#include "obs/trace.h"

#if defined(__GLIBC__) && __has_include(<execinfo.h>)
#include <execinfo.h>
#define GTV_HAVE_BACKTRACE 1
#endif

namespace gtv::obs::bb {

namespace {

// --- little-endian primitives (no allocation; signal-safe) ------------------------

inline void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void put_u32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

inline std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline void put_f32(std::uint8_t* p, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(p, bits);
}

inline float get_f32(const std::uint8_t* p) {
  const std::uint32_t bits = get_u32(p);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

// CRC-32 (IEEE, reflected). Own copy: gtv_net links gtv_obs, so the obs
// layer cannot reach net::crc32 without a dependency cycle. The table is
// built eagerly at namespace scope — signal handlers must never hit a
// lazy-init path.
struct CrcTable {
  std::uint32_t t[256];
  CrcTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};
const CrcTable g_crc;

inline std::uint32_t crc_feed(std::uint32_t c, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) c = g_crc.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c;
}

// CRC over a fully-assembled frame: bytes [4,12) + [16,32) + payload (the
// CRC field itself at [12,16) is excluded).
std::uint32_t frame_crc(const std::uint8_t* frame, std::size_t payload_len) {
  std::uint32_t c = 0xffffffffu;
  c = crc_feed(c, frame + 4, 8);
  c = crc_feed(c, frame + 16, 16);
  c = crc_feed(c, frame + kRecordHeaderBytes, payload_len);
  return c ^ 0xffffffffu;
}

// string field: u16 length + raw bytes. Returns bytes consumed, 0 = no fit.
std::size_t put_str(std::uint8_t* buf, std::size_t cap, const char* s, std::size_t len) {
  if (len > 0xffff || 2 + len > cap) return 0;
  put_u16(buf, static_cast<std::uint16_t>(len));
  std::memcpy(buf + 2, s, len);
  return 2 + len;
}

std::string get_str(const std::uint8_t* p, std::size_t len, std::size_t& off) {
  if (off + 2 > len) throw std::runtime_error("blackbox: truncated string field");
  const std::uint16_t n = get_u16(p + off);
  off += 2;
  if (off + n > len) throw std::runtime_error("blackbox: string field overruns payload");
  std::string s(reinterpret_cast<const char*>(p + off), n);
  off += n;
  return s;
}

// PC-list payloads (crash / thread stack) share one raw encoder so the
// signal handlers can build them without constructing the structs (whose
// std::vector member would allocate).
std::size_t encode_crash_raw(std::uint8_t* buf, std::size_t cap, std::uint32_t sig,
                             std::uint64_t addr, void* const* frames, int n) {
  if (n < 0) n = 0;
  std::size_t need = 16 + static_cast<std::size_t>(n) * 8;
  while (need > cap && n > 0) {
    --n;
    need -= 8;
  }
  if (need > cap) return 0;
  put_u32(buf, sig);
  put_u32(buf + 4, static_cast<std::uint32_t>(n));
  put_u64(buf + 8, addr);
  for (int i = 0; i < n; ++i) {
    put_u64(buf + 16 + 8 * static_cast<std::size_t>(i),
            reinterpret_cast<std::uint64_t>(frames[i]));
  }
  return need;
}

std::size_t encode_stack_raw(std::uint8_t* buf, std::size_t cap, std::uint64_t tid,
                             void* const* frames, int n) {
  if (n < 0) n = 0;
  std::size_t need = 16 + static_cast<std::size_t>(n) * 8;
  while (need > cap && n > 0) {
    --n;
    need -= 8;
  }
  if (need > cap) return 0;
  put_u64(buf, tid);
  put_u32(buf + 8, static_cast<std::uint32_t>(n));
  put_u32(buf + 12, 0);
  for (int i = 0; i < n; ++i) {
    put_u64(buf + 16 + 8 * static_cast<std::size_t>(i),
            reinterpret_cast<std::uint64_t>(frames[i]));
  }
  return need;
}

std::vector<std::uint64_t> decode_pcs(const std::uint8_t* p, std::size_t len,
                                      std::size_t off, std::uint32_t n) {
  if (off + static_cast<std::size_t>(n) * 8 > len) {
    throw std::runtime_error("blackbox: pc list overruns payload");
  }
  std::vector<std::uint64_t> pcs;
  pcs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) pcs.push_back(get_u64(p + off + 8 * i));
  return pcs;
}

std::atomic<BlackBox*> g_box{nullptr};

// Re-entrancy latch: a crash inside the crash handler must fall straight
// through to the re-raise, not recurse into the recorder.
std::atomic<int> g_crash_depth{0};

constexpr int kStackDumpSignal = SIGUSR1;
constexpr int kMaxBacktraceFrames = 48;

int capture_backtrace(void** frames, int max) {
#if defined(GTV_HAVE_BACKTRACE)
  return ::backtrace(frames, max);
#else
  (void)frames;
  (void)max;
  return 0;
#endif
}

void crash_handler(int sig, siginfo_t* info, void*) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box != nullptr && g_crash_depth.fetch_add(1, std::memory_order_relaxed) == 0) {
    void* frames[kMaxBacktraceFrames];
    const int n = capture_backtrace(frames, kMaxBacktraceFrames);
    const std::uint64_t addr =
        info != nullptr ? reinterpret_cast<std::uint64_t>(info->si_addr) : 0;
    std::uint8_t buf[kMaxRecordPayload];
    const std::size_t len = encode_crash_raw(buf, sizeof(buf),
                                             static_cast<std::uint32_t>(sig), addr,
                                             frames, n);
    box->append(RecordType::kCrash, buf, len);
    box->sync();
  }
  // Die with the correct wait status: restore the default disposition and
  // re-raise. For a genuine fault the pending signal (blocked while this
  // handler runs) is redelivered on return with the default action.
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void stack_dump_handler(int, siginfo_t*, void*) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr) return;
  void* frames[kMaxBacktraceFrames];
  const int n = capture_backtrace(frames, kMaxBacktraceFrames);
  const std::uint64_t tid =
      static_cast<std::uint64_t>(::syscall(SYS_gettid));
  std::uint8_t buf[kMaxRecordPayload];
  const std::size_t len = encode_stack_raw(buf, sizeof(buf), tid, frames, n);
  box->append(RecordType::kThreadStack, buf, len);
}

// Signals every thread in this process to append its backtrace, then gives
// the handlers a beat to run. Called from the watchdog thread (ordinary
// context — readdir is fine here).
void dump_all_thread_stacks() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) {
    // No /proc (non-Linux): dump at least the calling thread.
    ::raise(kStackDumpSignal);
    return;
  }
  const pid_t pid = ::getpid();
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    const long tid = std::strtol(entry->d_name, nullptr, 10);
    if (tid <= 0) continue;
    ::syscall(SYS_tgkill, pid, static_cast<pid_t>(tid), kStackDumpSignal);
  }
  ::closedir(dir);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

std::uint64_t wall_clock_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

}  // namespace

const char* to_string(RecordType type) {
  switch (type) {
    case RecordType::kRunHeader: return "run_header";
    case RecordType::kPhase: return "phase";
    case RecordType::kLoss: return "loss";
    case RecordType::kAlert: return "alert";
    case RecordType::kNetEvent: return "net_event";
    case RecordType::kStall: return "stall";
    case RecordType::kThreadStack: return "thread_stack";
    case RecordType::kCrash: return "crash";
    case RecordType::kShutdown: return "shutdown";
  }
  return "unknown";
}

const char* to_string(NetEvent kind) {
  switch (kind) {
    case NetEvent::kRetry: return "retry";
    case NetEvent::kTimeout: return "timeout";
    case NetEvent::kCorruptFrame: return "corrupt_frame";
    case NetEvent::kConnect: return "connect";
    case NetEvent::kAccept: return "accept";
    case NetEvent::kDisconnect: return "disconnect";
  }
  return "unknown";
}

// --- typed payload codecs ---------------------------------------------------------

std::size_t RunHeaderRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 40) return 0;
  put_u64(buf, n_clients);
  put_u64(buf + 8, rounds);
  put_u64(buf + 16, seed);
  put_u64(buf + 24, wall_us);
  put_u64(buf + 32, pid);
  const std::size_t s = put_str(buf + 40, cap - 40, party.data(), party.size());
  return s == 0 ? 0 : 40 + s;
}

RunHeaderRecord RunHeaderRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 42) throw std::runtime_error("blackbox: run header too short");
  RunHeaderRecord r;
  r.n_clients = get_u64(p);
  r.rounds = get_u64(p + 8);
  r.seed = get_u64(p + 16);
  r.wall_us = get_u64(p + 24);
  r.pid = get_u64(p + 32);
  std::size_t off = 40;
  r.party = get_str(p, len, off);
  return r;
}

std::size_t PhaseRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 12) return 0;
  put_u64(buf, round);
  put_u32(buf + 8, phase);
  return 12;
}

PhaseRecord PhaseRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 12) throw std::runtime_error("blackbox: phase record too short");
  return PhaseRecord{get_u64(p), get_u32(p + 8)};
}

std::size_t LossRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 24) return 0;
  put_u64(buf, round);
  put_f32(buf + 8, d_loss);
  put_f32(buf + 12, g_loss);
  put_f32(buf + 16, gp);
  put_f32(buf + 20, wasserstein);
  return 24;
}

LossRecord LossRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 24) throw std::runtime_error("blackbox: loss record too short");
  return LossRecord{get_u64(p), get_f32(p + 8), get_f32(p + 12), get_f32(p + 16),
                    get_f32(p + 20)};
}

std::size_t AlertRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 12) return 0;
  put_u32(buf, severity);
  put_u64(buf + 4, round);
  const std::size_t s = put_str(buf + 12, cap - 12, rule.data(), rule.size());
  return s == 0 ? 0 : 12 + s;
}

AlertRecord AlertRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 14) throw std::runtime_error("blackbox: alert record too short");
  AlertRecord r;
  r.severity = get_u32(p);
  r.round = get_u64(p + 4);
  std::size_t off = 12;
  r.rule = get_str(p, len, off);
  return r;
}

std::size_t NetEventRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 4) return 0;
  put_u32(buf, static_cast<std::uint32_t>(kind));
  const std::size_t s = put_str(buf + 4, cap - 4, link.data(), link.size());
  return s == 0 ? 0 : 4 + s;
}

NetEventRecord NetEventRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 6) throw std::runtime_error("blackbox: net event record too short");
  NetEventRecord r;
  r.kind = static_cast<NetEvent>(get_u32(p));
  std::size_t off = 4;
  r.link = get_str(p, len, off);
  return r;
}

std::size_t StallRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 20) return 0;
  put_u64(buf, stalled_ms);
  put_u64(buf + 8, round);
  put_u32(buf + 16, phase);
  return 20;
}

StallRecord StallRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 20) throw std::runtime_error("blackbox: stall record too short");
  return StallRecord{get_u64(p), get_u64(p + 8), get_u32(p + 16)};
}

std::size_t ThreadStackRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  std::vector<void*> frames(pcs.size());
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    frames[i] = reinterpret_cast<void*>(pcs[i]);
  }
  return encode_stack_raw(buf, cap, tid, frames.data(), static_cast<int>(frames.size()));
}

ThreadStackRecord ThreadStackRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 16) throw std::runtime_error("blackbox: thread stack record too short");
  ThreadStackRecord r;
  r.tid = get_u64(p);
  r.pcs = decode_pcs(p, len, 16, get_u32(p + 8));
  return r;
}

std::size_t CrashRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  std::vector<void*> frames(pcs.size());
  for (std::size_t i = 0; i < pcs.size(); ++i) {
    frames[i] = reinterpret_cast<void*>(pcs[i]);
  }
  return encode_crash_raw(buf, cap, signal, fault_addr, frames.data(),
                          static_cast<int>(frames.size()));
}

CrashRecord CrashRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 16) throw std::runtime_error("blackbox: crash record too short");
  CrashRecord r;
  r.signal = get_u32(p);
  r.fault_addr = get_u64(p + 8);
  r.pcs = decode_pcs(p, len, 16, get_u32(p + 4));
  return r;
}

std::size_t ShutdownRecord::encode(std::uint8_t* buf, std::size_t cap) const {
  if (cap < 4) return 0;
  put_u32(buf, code);
  const std::size_t s = put_str(buf + 4, cap - 4, reason.data(), reason.size());
  return s == 0 ? 0 : 4 + s;
}

ShutdownRecord ShutdownRecord::decode(const std::uint8_t* p, std::size_t len) {
  if (len < 6) throw std::runtime_error("blackbox: shutdown record too short");
  ShutdownRecord r;
  r.code = get_u32(p);
  std::size_t off = 4;
  r.reason = get_str(p, len, off);
  return r;
}

// --- BlackBox ---------------------------------------------------------------------

BlackBox::BlackBox(const std::string& path, const RunHeaderRecord& header,
                   Options options)
    : path_(path) {
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "mapped-header atomics must be lock-free for signal safety");
  capacity_ = options.capacity_bytes < kMinRingCapacity ? kMinRingCapacity
                                                        : options.capacity_bytes;
  capacity_ = (capacity_ + 7) & ~std::size_t{7};
  map_len_ = kRingHeaderBytes + capacity_;

  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("blackbox: cannot create " + path);
  if (::ftruncate(fd, static_cast<off_t>(map_len_)) != 0) {
    ::close(fd);
    throw std::runtime_error("blackbox: cannot size " + path);
  }
  void* m = ::mmap(nullptr, map_len_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED) throw std::runtime_error("blackbox: mmap failed for " + path);
  map_ = static_cast<std::uint8_t*>(m);
  ring_ = map_ + kRingHeaderBytes;

  put_u64(map_, kFileMagic);
  put_u32(map_ + 8, kRingFormatVersion);
  put_u32(map_ + 12, static_cast<std::uint32_t>(kRingHeaderBytes));
  put_u64(map_ + 16, capacity_);
  cursor_ = reinterpret_cast<std::atomic<std::uint64_t>*>(map_ + 24);
  written_ = reinterpret_cast<std::atomic<std::uint64_t>*>(map_ + 32);
  dropped_ = reinterpret_cast<std::atomic<std::uint64_t>*>(map_ + 40);
  cursor_->store(0, std::memory_order_relaxed);
  written_->store(0, std::memory_order_relaxed);
  dropped_->store(0, std::memory_order_relaxed);

  // First record: who we are. Filling wall_us here also primes
  // TraceSink::now_us()'s epoch before any signal handler can need it.
  RunHeaderRecord run = header;
  if (run.wall_us == 0) run.wall_us = wall_clock_us();
  if (run.pid == 0) run.pid = static_cast<std::uint64_t>(::getpid());
  std::uint8_t buf[kMaxRecordPayload];
  const std::size_t len = run.encode(buf, sizeof(buf));
  append(RecordType::kRunHeader, buf, len);
}

BlackBox::~BlackBox() {
  if (map_ != nullptr) {
    ::msync(map_, map_len_, MS_ASYNC);
    ::munmap(map_, map_len_);
  }
}

std::uint8_t* BlackBox::reserve(std::size_t total) {
  for (;;) {
    std::uint64_t cur = cursor_->load(std::memory_order_relaxed);
    const std::uint64_t start = cur % capacity_;
    const std::uint64_t tail = capacity_ - start;
    const bool wrap = total > tail;
    const std::uint64_t advance = wrap ? tail + total : total;
    if (cursor_->compare_exchange_weak(cur, cur + advance, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      if (wrap) {
        // The wasted tail is smaller than one record; zero it so the
        // scanner never mistakes stale frame headers there for records.
        std::memset(ring_ + start, 0, tail);
        return ring_;
      }
      return ring_ + start;
    }
  }
}

void BlackBox::append(RecordType type, const std::uint8_t* payload, std::size_t len) {
  if (len > kMaxRecordPayload || (len > 0 && payload == nullptr)) {
    dropped_->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t padded = (len + 7) & ~std::size_t{7};
  std::uint8_t* frame = reserve(kRecordHeaderBytes + padded);
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);

  put_u16(frame + 4, static_cast<std::uint16_t>(type));
  put_u16(frame + 6, 0);
  put_u32(frame + 8, static_cast<std::uint32_t>(len));
  put_u64(frame + 16, seq);
  put_u64(frame + 24, TraceSink::now_us());
  if (len > 0) std::memcpy(frame + kRecordHeaderBytes, payload, len);
  if (padded > len) std::memset(frame + kRecordHeaderBytes + len, 0, padded - len);
  put_u32(frame + 12, frame_crc(frame, len));
  // Publish last: until the magic lands, scanners see an invalid frame.
  std::atomic_thread_fence(std::memory_order_release);
  reinterpret_cast<std::atomic<std::uint32_t>*>(frame)->store(
      kRecordMagic, std::memory_order_relaxed);
  written_->fetch_add(1, std::memory_order_relaxed);
}

void BlackBox::sync() const {
  if (map_ != nullptr) ::msync(map_, map_len_, MS_ASYNC);
}

std::uint64_t BlackBox::records_written() const {
  return written_->load(std::memory_order_relaxed);
}

std::uint64_t BlackBox::records_dropped() const {
  return dropped_->load(std::memory_order_relaxed);
}

BlackBox* BlackBox::open_global(const std::string& path, const RunHeaderRecord& header,
                                Options options) {
  BlackBox* box = new BlackBox(path, header, options);
  // The previous instance (tests re-opening) leaks deliberately: a signal
  // handler that raced the swap must never touch an unmapped region.
  g_box.exchange(box, std::memory_order_acq_rel);
  return box;
}

BlackBox* BlackBox::get() { return g_box.load(std::memory_order_acquire); }

// --- note_* helpers ---------------------------------------------------------------

void note_phase(std::uint64_t round, std::uint32_t phase) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr) return;
  std::uint8_t buf[16];
  const std::size_t len = PhaseRecord{round, phase}.encode(buf, sizeof(buf));
  box->append(RecordType::kPhase, buf, len);
}

void note_loss(std::uint64_t round, float d, float g, float gp, float w) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr) return;
  std::uint8_t buf[24];
  const std::size_t len = LossRecord{round, d, g, gp, w}.encode(buf, sizeof(buf));
  box->append(RecordType::kLoss, buf, len);
}

void note_alert(std::uint32_t severity, std::uint64_t round, const char* rule) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr || rule == nullptr) return;
  std::uint8_t buf[256];
  put_u32(buf, severity);
  put_u64(buf + 4, round);
  const std::size_t s = put_str(buf + 12, sizeof(buf) - 12, rule,
                                std::strlen(rule) > 200 ? 200 : std::strlen(rule));
  if (s == 0) return;
  box->append(RecordType::kAlert, buf, 12 + s);
}

void note_net_event(NetEvent kind, const char* link) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr || link == nullptr) return;
  std::uint8_t buf[256];
  put_u32(buf, static_cast<std::uint32_t>(kind));
  const std::size_t s = put_str(buf + 4, sizeof(buf) - 4, link,
                                std::strlen(link) > 200 ? 200 : std::strlen(link));
  if (s == 0) return;
  box->append(RecordType::kNetEvent, buf, 4 + s);
}

void note_shutdown(std::uint32_t code, const char* reason) {
  BlackBox* box = g_box.load(std::memory_order_acquire);
  if (box == nullptr) return;
  std::uint8_t buf[256];
  put_u32(buf, code);
  const char* text = reason == nullptr ? "" : reason;
  const std::size_t s = put_str(buf + 4, sizeof(buf) - 4, text,
                                std::strlen(text) > 200 ? 200 : std::strlen(text));
  if (s == 0) return;
  box->append(RecordType::kShutdown, buf, 4 + s);
  box->sync();
}

// --- signal handlers --------------------------------------------------------------

void install_crash_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;

#if defined(GTV_HAVE_BACKTRACE)
  // glibc backtrace lazily loads libgcc on first use (malloc + dlopen) —
  // do that now, outside signal context.
  void* warm[4];
  ::backtrace(warm, 4);
#endif

  // Alternate stack: a stack-overflow SIGSEGV cannot run its handler on
  // the exhausted stack.
  static char alt_stack[64 * 1024];
  stack_t ss{};
  ss.ss_sp = alt_stack;
  ss.ss_size = sizeof(alt_stack);
  ::sigaltstack(&ss, nullptr);

  struct sigaction sa{};
  sa.sa_sigaction = crash_handler;
  sa.sa_flags = SA_SIGINFO | SA_ONSTACK;
  sigemptyset(&sa.sa_mask);
  for (int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE}) {
    ::sigaction(sig, &sa, nullptr);
  }

  struct sigaction dump{};
  dump.sa_sigaction = stack_dump_handler;
  dump.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&dump.sa_mask);
  ::sigaction(kStackDumpSignal, &dump, nullptr);
}

// --- StallWatchdog ----------------------------------------------------------------

struct StallWatchdog::ThreadBox {
  std::thread thread;
  std::mutex mu;
  std::condition_variable cv;
};

StallWatchdog::StallWatchdog(const std::atomic<std::uint64_t>* round,
                             const std::atomic<std::uint32_t>* phase, Options options)
    : round_(round), phase_(phase), options_(options), thread_(new ThreadBox) {}

StallWatchdog::~StallWatchdog() {
  stop();
  delete thread_;
}

void StallWatchdog::start() {
  if (started_) return;
  started_ = true;
  install_crash_handlers();  // the stack-dump handler rides on the same install
  thread_->thread = std::thread([this] { run(); });
}

void StallWatchdog::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(thread_->mu);
    stopping_.store(true);
  }
  thread_->cv.notify_all();
  if (thread_->thread.joinable()) thread_->thread.join();
  started_ = false;
  stopping_.store(false);
}

void StallWatchdog::run() {
  set_current_thread_name("gtv-watchdog");
  auto progress = [this]() -> std::uint64_t {
    // Round/phase are the real signal (a stuck recv loop keeps appending
    // retry records, which must not mask the stall); fall back to the
    // recorder's seq when no status atomics were provided.
    if (round_ != nullptr || phase_ != nullptr) {
      const std::uint64_t r =
          round_ != nullptr ? round_->load(std::memory_order_relaxed) : 0;
      const std::uint64_t p =
          phase_ != nullptr ? phase_->load(std::memory_order_relaxed) : 0;
      return (r << 8) ^ p;
    }
    BlackBox* box = BlackBox::get();
    return box != nullptr ? box->next_seq() : 0;
  };

  std::uint64_t last = progress();
  auto last_change = std::chrono::steady_clock::now();
  bool dumped = false;
  std::unique_lock<std::mutex> lock(thread_->mu);
  while (!stopping_.load()) {
    thread_->cv.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                         [this] { return stopping_.load(); });
    if (stopping_.load()) break;
    const std::uint64_t now_val = progress();
    const auto now = std::chrono::steady_clock::now();
    if (now_val != last) {
      last = now_val;
      last_change = now;
      dumped = false;
      continue;
    }
    const auto stalled =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_change);
    if (!dumped && stalled.count() >= options_.stall_ms) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      BlackBox* box = BlackBox::get();
      if (box != nullptr) {
        StallRecord rec;
        rec.stalled_ms = static_cast<std::uint64_t>(stalled.count());
        rec.round = round_ != nullptr ? round_->load(std::memory_order_relaxed) : 0;
        rec.phase = phase_ != nullptr ? phase_->load(std::memory_order_relaxed) : 0;
        std::uint8_t buf[24];
        box->append(RecordType::kStall, buf, rec.encode(buf, sizeof(buf)));
        if (options_.dump_stacks) {
          lock.unlock();
          dump_all_thread_stacks();
          lock.lock();
        }
        box->sync();
      }
      dumped = true;  // one dump per episode; re-arms on progress
    }
  }
}

// --- offline reader ---------------------------------------------------------------

ReadResult read_ring(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("blackbox: cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (bytes.size() < kRingHeaderBytes) {
    throw std::runtime_error("blackbox: " + path + " is too small to be a ring file");
  }
  if (get_u64(bytes.data()) != kFileMagic) {
    throw std::runtime_error("blackbox: " + path + " has no GTVBBOX1 magic");
  }
  const std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kRingFormatVersion) {
    throw std::runtime_error("blackbox: " + path + " format version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(kRingFormatVersion) + ")");
  }
  ReadResult out;
  out.info.capacity = static_cast<std::size_t>(get_u64(bytes.data() + 16));
  out.info.cursor = get_u64(bytes.data() + 24);
  out.info.records_written = get_u64(bytes.data() + 32);
  out.info.records_dropped = get_u64(bytes.data() + 40);

  const std::uint8_t* ring = bytes.data() + kRingHeaderBytes;
  const std::size_t ring_len =
      bytes.size() - kRingHeaderBytes < out.info.capacity
          ? bytes.size() - kRingHeaderBytes
          : out.info.capacity;

  std::size_t off = 0;
  while (off + kRecordHeaderBytes <= ring_len) {
    if (get_u32(ring + off) != kRecordMagic) {
      off += 8;
      continue;
    }
    const std::uint8_t* frame = ring + off;
    const std::uint16_t type = get_u16(frame + 4);
    const std::uint32_t payload_len = get_u32(frame + 8);
    const std::size_t padded = (static_cast<std::size_t>(payload_len) + 7) & ~std::size_t{7};
    if (type < 1 || type > static_cast<std::uint16_t>(RecordType::kShutdown) ||
        payload_len > kMaxRecordPayload ||
        off + kRecordHeaderBytes + padded > ring_len) {
      ++out.crc_rejects;
      off += 8;
      continue;
    }
    if (frame_crc(frame, payload_len) != get_u32(frame + 12)) {
      ++out.crc_rejects;
      off += 8;
      continue;
    }
    Record rec;
    rec.type = static_cast<RecordType>(type);
    rec.seq = get_u64(frame + 16);
    rec.t_us = get_u64(frame + 24);
    rec.payload.assign(frame + kRecordHeaderBytes,
                       frame + kRecordHeaderBytes + payload_len);
    out.records.push_back(std::move(rec));
    off += kRecordHeaderBytes + padded;
  }

  std::sort(out.records.begin(), out.records.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  for (const Record& rec : out.records) {
    if (rec.type == RecordType::kRunHeader && !out.has_run_header) {
      out.run_header = RunHeaderRecord::decode(rec.payload.data(), rec.payload.size());
      out.has_run_header = true;
    }
  }
  return out;
}

std::vector<std::string> validate(const ReadResult& ring) {
  std::vector<std::string> problems;
  if (ring.records.empty()) {
    problems.push_back("ring holds no valid records");
    return problems;
  }
  if (!ring.has_run_header) problems.push_back("no run header record retained");

  // Seqs: strictly monotone (records are sorted, so any equal neighbours
  // are duplicates), and contiguous over the retained window. The oldest
  // edge legitimately loses frames to ring overwrite; interior gaps can
  // only come from writers killed mid-append, so more than a handful means
  // the ring is damaged.
  std::uint64_t interior_gaps = 0;
  for (std::size_t i = 1; i < ring.records.size(); ++i) {
    const std::uint64_t prev = ring.records[i - 1].seq;
    const std::uint64_t cur = ring.records[i].seq;
    if (cur == prev) {
      problems.push_back("duplicate seq " + std::to_string(cur));
    } else if (cur != prev + 1) {
      interior_gaps += cur - prev - 1;
    }
  }
  if (interior_gaps > 4) {
    problems.push_back("ring is missing " + std::to_string(interior_gaps) +
                       " interior seqs");
  }

  // Every payload must decode as its type.
  for (const Record& rec : ring.records) {
    try {
      const std::uint8_t* p = rec.payload.data();
      const std::size_t n = rec.payload.size();
      switch (rec.type) {
        case RecordType::kRunHeader: RunHeaderRecord::decode(p, n); break;
        case RecordType::kPhase: PhaseRecord::decode(p, n); break;
        case RecordType::kLoss: LossRecord::decode(p, n); break;
        case RecordType::kAlert: AlertRecord::decode(p, n); break;
        case RecordType::kNetEvent: NetEventRecord::decode(p, n); break;
        case RecordType::kStall: StallRecord::decode(p, n); break;
        case RecordType::kThreadStack: ThreadStackRecord::decode(p, n); break;
        case RecordType::kCrash: CrashRecord::decode(p, n); break;
        case RecordType::kShutdown: ShutdownRecord::decode(p, n); break;
      }
    } catch (const std::exception& e) {
      problems.push_back("seq " + std::to_string(rec.seq) + ": " + e.what());
    }
  }
  return problems;
}

}  // namespace gtv::obs::bb
