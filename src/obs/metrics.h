// gtv::obs — process-wide metrics for the VFL training stack.
//
// A MetricsRegistry holds named counters, gauges, and fixed-bucket
// histograms. Registration/lookup takes a mutex; the returned handles are
// stable for the life of the process and every update on them is a relaxed
// atomic, so instrumented hot paths never contend on the registry lock.
//
// Cost model (the "near-zero when disabled" contract):
//   - Counter/Gauge updates are single relaxed atomics and are always on
//     (the TrafficMeter publishes through them unconditionally).
//   - Anything that needs a clock — ScopedTimer, thread-pool busy/idle
//     accounting — is gated by timing_enabled(): off by default, switched
//     on by the GTV_METRICS environment variable (any value except "0"),
//     by an active GTV_TRACE sink, or programmatically for tests. When
//     off, a gated ScopedTimer never reads the clock and never touches
//     its histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gtv::obs {

// Global switch for clock-reading instrumentation (see file comment).
bool timing_enabled();
void set_timing_enabled(bool enabled);

// Escapes `"`, `\` and control characters for embedding in a JSON string.
std::string json_escape(const std::string& s);

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram for non-negative samples (durations, sizes).
// Bucket i counts samples in (bounds[i-1], bounds[i]]; one overflow bucket
// catches everything above the last bound. Percentiles are reconstructed
// from the bucket counts with linear interpolation inside the bucket, then
// clamped into the observed [min, max] range — without the clamp, samples
// sitting at or near a bucket's lower edge interpolate toward the upper
// bound and p99/p100 can exceed the largest value ever recorded
// (obs_test pins this boundary behaviour).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  // Smallest recorded sample; 0 when empty.
  double min() const;
  // p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
  // Seeded to +inf so the first record() always captures it; min() reports
  // 0 while empty.
  std::atomic<double> min_;
};

// Default histogram bounds for millisecond durations: 10us .. 60s,
// roughly 1-2-5 per decade.
const std::vector<double>& default_latency_bounds_ms();

class MetricsRegistry {
 public:
  // Process-wide registry; all instrumentation publishes here.
  static MetricsRegistry& instance();

  // Find-or-create by name. Handles stay valid for the process lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // `upper_bounds` is only consulted on first creation; empty means
  // default_latency_bounds_ms().
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histograms report count/sum/p50/p90/p99/min/max.
  std::string to_json() const;

  // Prometheus text exposition format (version 0.0.4): counters and gauges
  // as single samples, histograms as cumulative `_bucket{le="..."}` series
  // plus `_sum`/`_count`. Metric names are sanitized to [a-zA-Z0-9_:]
  // ('.', '-', '>' etc. become '_'), so `gtv.health.server.D.grad_norm`
  // scrapes as `gtv_health_server_D_grad_norm`.
  std::string to_prometheus() const;

  // Point-in-time copy of every counter (raw names -> values). Lets
  // readers enumerate e.g. the per-link `net.*` traffic counters without
  // holding the registry lock while they work.
  std::map<std::string, std::uint64_t> counters_snapshot() const;

  // Zeroes every registered metric; handles stay valid. For tests and for
  // benchmark repeats that want per-run deltas.
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gtv::obs
