#include "obs/snapshot.h"

#include <cstring>
#include <map>
#include <sstream>

#include "net/transport.h"
#include "obs/health.h"
#include "obs/memory.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace gtv::obs::agg {

namespace {

// Caps keep a corrupt length field from driving a multi-GiB allocation
// before the exact-size check can reject the frame.
constexpr std::size_t kMaxStringBytes = 16u << 20;
constexpr std::size_t kMaxLinks = 1u << 16;
constexpr std::size_t kMaxHotFrames = 64;

void append_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_f32_le(std::vector<std::uint8_t>& out, float f) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &f, 4);
  append_u32_le(out, bits);
}

void append_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > kMaxStringBytes) {
    throw net::WireError("snapshot: string field too large (" +
                         std::to_string(s.size()) + " bytes)");
  }
  append_u32_le(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[offset_ + i]) << (8 * i);
    }
    offset_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[offset_ + i]) << (8 * i);
    }
    offset_ += 8;
    return v;
  }

  float f32() {
    const std::uint32_t bits = u32();
    float f = 0.0f;
    std::memcpy(&f, &bits, 4);
    return f;
  }

  std::string str() {
    const std::uint32_t len = u32();
    if (len > kMaxStringBytes) {
      throw net::WireError("snapshot: string length " + std::to_string(len) +
                           " exceeds cap");
    }
    need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data()) + offset_, len);
    offset_ += len;
    return s;
  }

  void expect_end() const {
    if (offset_ != bytes_.size()) {
      throw net::WireError("snapshot: " + std::to_string(bytes_.size() - offset_) +
                           " trailing bytes after decode");
    }
  }

 private:
  void need(std::size_t n) const {
    if (bytes_.size() - offset_ < n) {
      throw net::WireError("snapshot: truncated frame (need " + std::to_string(n) +
                           " bytes at offset " + std::to_string(offset_) + ")");
    }
  }

  const std::vector<std::uint8_t>& bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kIdle: return "idle";
    case Phase::kSetup: return "setup";
    case Phase::kCritic: return "critic";
    case Phase::kGenerator: return "generator";
    case Phase::kShuffle: return "shuffle";
    case Phase::kDone: return "done";
    case Phase::kServeWait: return "serve-wait";
    case Phase::kServeBatch: return "serve-batch";
    case Phase::kServeDrain: return "serve-drain";
  }
  return "unknown";
}

std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap) {
  if (snap.links.size() > kMaxLinks) {
    throw net::WireError("snapshot: too many links (" +
                         std::to_string(snap.links.size()) + ")");
  }
  if (snap.hot.size() > kMaxHotFrames) {
    throw net::WireError("snapshot: too many hot frames (" +
                         std::to_string(snap.hot.size()) + ")");
  }
  std::vector<std::uint8_t> out;
  out.reserve(128 + snap.party.size() + snap.prom.size() + snap.links.size() * 32);
  append_u32_le(out, kSnapshotSchemaVersion);
  append_str(out, snap.party);
  append_u64_le(out, snap.seq);
  append_u64_le(out, snap.t_us);
  append_u64_le(out, snap.round);
  append_u64_le(out, snap.rounds_total);
  append_u32_le(out, snap.phase);
  append_f32_le(out, snap.d_loss);
  append_f32_le(out, snap.g_loss);
  append_f32_le(out, snap.gp);
  append_f32_le(out, snap.wasserstein);
  append_u64_le(out, snap.bytes);
  append_u64_le(out, snap.messages);
  append_u64_le(out, snap.retries);
  append_u64_le(out, snap.timeouts);
  append_u64_le(out, snap.corrupt_frames);
  append_u64_le(out, snap.mem_live_bytes);
  append_u64_le(out, snap.mem_peak_bytes);
  append_u64_le(out, snap.alerts_info);
  append_u64_le(out, snap.alerts_warn);
  append_u64_le(out, snap.alerts_fatal);
  append_u32_le(out, static_cast<std::uint32_t>(snap.links.size()));
  for (const LinkTraffic& lt : snap.links) {
    append_str(out, lt.link);
    append_u64_le(out, lt.bytes);
    append_u64_le(out, lt.messages);
  }
  append_u64_le(out, snap.samples_total);
  append_u32_le(out, static_cast<std::uint32_t>(snap.hot.size()));
  for (const HotFrame& hf : snap.hot) {
    append_str(out, hf.frame);
    append_u64_le(out, hf.samples);
    append_u32_le(out, hf.on_cpu);
  }
  append_str(out, snap.prom);
  return out;
}

Snapshot deserialize_snapshot(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != kSnapshotSchemaVersion) {
    throw net::WireError("snapshot: schema version " + std::to_string(version) +
                         " (expected " + std::to_string(kSnapshotSchemaVersion) + ")");
  }
  Snapshot snap;
  snap.party = r.str();
  snap.seq = r.u64();
  snap.t_us = r.u64();
  snap.round = r.u64();
  snap.rounds_total = r.u64();
  snap.phase = r.u32();
  snap.d_loss = r.f32();
  snap.g_loss = r.f32();
  snap.gp = r.f32();
  snap.wasserstein = r.f32();
  snap.bytes = r.u64();
  snap.messages = r.u64();
  snap.retries = r.u64();
  snap.timeouts = r.u64();
  snap.corrupt_frames = r.u64();
  snap.mem_live_bytes = r.u64();
  snap.mem_peak_bytes = r.u64();
  snap.alerts_info = r.u64();
  snap.alerts_warn = r.u64();
  snap.alerts_fatal = r.u64();
  const std::uint32_t n_links = r.u32();
  if (n_links > kMaxLinks) {
    throw net::WireError("snapshot: link count " + std::to_string(n_links) +
                         " exceeds cap");
  }
  snap.links.reserve(n_links);
  for (std::uint32_t i = 0; i < n_links; ++i) {
    LinkTraffic lt;
    lt.link = r.str();
    lt.bytes = r.u64();
    lt.messages = r.u64();
    snap.links.push_back(std::move(lt));
  }
  snap.samples_total = r.u64();
  const std::uint32_t n_hot = r.u32();
  if (n_hot > kMaxHotFrames) {
    throw net::WireError("snapshot: hot frame count " + std::to_string(n_hot) +
                         " exceeds cap");
  }
  snap.hot.reserve(n_hot);
  for (std::uint32_t i = 0; i < n_hot; ++i) {
    HotFrame hf;
    hf.frame = r.str();
    hf.samples = r.u64();
    hf.on_cpu = r.u32();
    snap.hot.push_back(std::move(hf));
  }
  snap.prom = r.str();
  r.expect_end();
  return snap;
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"party\":\"" << json_escape(party) << "\",\"seq\":" << seq
     << ",\"t_us\":" << t_us << ",\"round\":" << round
     << ",\"rounds_total\":" << rounds_total << ",\"phase\":\""
     << agg::to_string(static_cast<Phase>(phase)) << "\",\"d_loss\":" << d_loss
     << ",\"g_loss\":" << g_loss << ",\"gp\":" << gp
     << ",\"wasserstein\":" << wasserstein << ",\"bytes\":" << bytes
     << ",\"messages\":" << messages << ",\"retries\":" << retries
     << ",\"timeouts\":" << timeouts << ",\"corrupt_frames\":" << corrupt_frames
     << ",\"mem_live_bytes\":" << mem_live_bytes
     << ",\"mem_peak_bytes\":" << mem_peak_bytes << ",\"alerts\":{\"info\":"
     << alerts_info << ",\"warn\":" << alerts_warn << ",\"fatal\":" << alerts_fatal
     << "},\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"link\":\"" << json_escape(links[i].link)
       << "\",\"bytes\":" << links[i].bytes << ",\"messages\":" << links[i].messages
       << "}";
  }
  os << "],\"samples_total\":" << samples_total << ",\"hot\":[";
  for (std::size_t i = 0; i < hot.size(); ++i) {
    if (i > 0) os << ",";
    os << "{\"frame\":\"" << json_escape(hot[i].frame)
       << "\",\"samples\":" << hot[i].samples
       << ",\"on_cpu\":" << (hot[i].on_cpu != 0 ? "true" : "false") << "}";
  }
  os << "],\"prom_bytes\":" << prom.size() << "}";
  return os.str();
}

Snapshot collect_snapshot(const std::string& party, const LiveStatus* status) {
  Snapshot snap;
  snap.party = party;
  snap.t_us = TraceSink::now_us();
  if (status != nullptr) {
    snap.round = status->round.load(std::memory_order_relaxed);
    snap.rounds_total = status->rounds_total.load(std::memory_order_relaxed);
    snap.phase = status->phase.load(std::memory_order_relaxed);
    snap.d_loss = status->d_loss.load(std::memory_order_relaxed);
    snap.g_loss = status->g_loss.load(std::memory_order_relaxed);
    snap.gp = status->gp.load(std::memory_order_relaxed);
    snap.wasserstein = status->wasserstein.load(std::memory_order_relaxed);
  }

  // Traffic comes from the registry rather than the TrafficMeter: the
  // meter's link map is not thread-safe against the training thread, while
  // registry counters are relaxed atomics behind a brief enumeration lock.
  auto& registry = MetricsRegistry::instance();
  std::map<std::string, LinkTraffic> by_link;
  for (const auto& [name, value] : registry.counters_snapshot()) {
    if (name.rfind("net.", 0) != 0) continue;
    const std::size_t dot = name.rfind('.');
    if (dot == std::string::npos || dot <= 4) continue;
    const std::string link = name.substr(4, dot - 4);
    const std::string field = name.substr(dot + 1);
    if (field == "bytes") {
      by_link[link].bytes = value;
      snap.bytes += value;
    } else if (field == "messages") {
      by_link[link].messages = value;
      snap.messages += value;
    } else if (field == "retries") {
      snap.retries += value;
    } else if (field == "timeouts") {
      snap.timeouts += value;
    } else if (field == "corrupt_frames") {
      snap.corrupt_frames += value;
    }
  }
  snap.links.reserve(by_link.size());
  for (auto& [link, lt] : by_link) {
    lt.link = link;
    snap.links.push_back(std::move(lt));
  }

  const MemStats mem = memory_stats();
  snap.mem_live_bytes = mem.live_bytes;
  snap.mem_peak_bytes = mem.peak_bytes;

  auto& health = HealthLog::instance();
  snap.alerts_info = health.count(Severity::kInfo);
  snap.alerts_warn = health.count(Severity::kWarn);
  snap.alerts_fatal = health.count(Severity::kFatal);

  // Hot stacks from the sampling profiler, when --sample-hz armed it.
  if (const sampler::Sampler* prof = sampler::Sampler::get()) {
    const sampler::SamplerStats st = prof->stats();
    snap.samples_total = st.cpu_samples + st.offcpu_samples;
    for (const sampler::HotEntry& e : prof->top_hot(16)) {
      HotFrame hf;
      hf.frame = e.frame;
      hf.samples = e.samples;
      hf.on_cpu = e.on_cpu ? 1 : 0;
      snap.hot.push_back(std::move(hf));
    }
  }

  snap.prom = registry.to_prometheus();
  return snap;
}

}  // namespace gtv::obs::agg
