// gtv::obs::agg — telemetry snapshot frames for the live cross-party plane.
//
// Each party periodically serializes a Snapshot — round/phase progress,
// losses, cumulative per-link traffic, memory high-water mark, health
// alert counts, plus the full Prometheus dump — and ships it to the
// driver-side Collector (obs/agg.h) on a dedicated socket. Snapshots are
// read-only observers: building one only loads atomics and copies registry
// counters, so the training loss trajectory is byte-identical with the
// telemetry plane on or off (pinned by the liveobs smoke in check.sh).
//
// LiveStatus is the producer side of the hook: a plain struct of relaxed
// atomics that the core nodes (src/core/node.cpp) update at step
// boundaries and a SnapshotPublisher samples from another thread. It is
// header-only on purpose — gtv_core can depend on it without linking the
// aggregation library.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/blackbox.h"

namespace gtv::obs::agg {

// Where a party currently is in the training protocol. The kServe*
// values cover a serving process (tools/gtv-serve): waiting for
// requests, running a coalesced generator batch, draining on shutdown.
enum class Phase : std::uint32_t {
  kIdle = 0,
  kSetup = 1,
  kCritic = 2,
  kGenerator = 3,
  kShuffle = 4,
  kDone = 5,
  kServeWait = 6,
  kServeBatch = 7,
  kServeDrain = 8,
};

const char* to_string(Phase phase);

// Lock-free live training status, updated by the node command loops and
// read by the snapshot publisher. All loads/stores are relaxed: telemetry
// tolerates momentarily torn *sets* of fields (each field is individually
// atomic) in exchange for zero overhead on the training path.
struct LiveStatus {
  std::atomic<std::uint64_t> round{0};
  std::atomic<std::uint64_t> rounds_total{0};
  std::atomic<std::uint32_t> phase{static_cast<std::uint32_t>(Phase::kIdle)};
  std::atomic<float> d_loss{0.0f};
  std::atomic<float> g_loss{0.0f};
  std::atomic<float> gp{0.0f};
  std::atomic<float> wasserstein{0.0f};

  // The setters double as the black-box emission points: every party role
  // funnels its round/phase/loss updates through here, so one hook covers
  // them all. bb::note_* is a single relaxed load when no recorder is open.
  void set_phase(Phase p) {
    phase.store(static_cast<std::uint32_t>(p), std::memory_order_relaxed);
    bb::note_phase(round.load(std::memory_order_relaxed),
                   static_cast<std::uint32_t>(p));
  }
  Phase get_phase() const {
    return static_cast<Phase>(phase.load(std::memory_order_relaxed));
  }
  void set_round(std::uint64_t r) { round.store(r, std::memory_order_relaxed); }
  void set_losses(float d, float g, float penalty, float w) {
    d_loss.store(d, std::memory_order_relaxed);
    g_loss.store(g, std::memory_order_relaxed);
    gp.store(penalty, std::memory_order_relaxed);
    wasserstein.store(w, std::memory_order_relaxed);
    bb::note_loss(round.load(std::memory_order_relaxed), d, g, penalty, w);
  }
};

// Cumulative traffic on one link, as published by the TrafficMeter into
// the MetricsRegistry (`net.<link>.bytes` / `.messages`).
struct LinkTraffic {
  std::string link;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

// One of the party's hottest functions, as folded by the sampling profiler
// (obs/sampler.h). `frame` is the demangled leaf symbol; `on_cpu` false means
// the samples were off-CPU (thread blocked in recv/condvar).
struct HotFrame {
  std::string frame;
  std::uint64_t samples = 0;
  std::uint32_t on_cpu = 1;
};

// v2: appended sampling-profiler block (samples_total + hot frames).
inline constexpr std::uint32_t kSnapshotSchemaVersion = 2;

// One telemetry frame. All totals are cumulative since process start; the
// Collector differences consecutive snapshots when it wants rates.
struct Snapshot {
  std::string party;
  std::uint64_t seq = 0;   // publisher-assigned, monotonically increasing
  std::uint64_t t_us = 0;  // sender's TraceSink::now_us() at build time
  std::uint64_t round = 0;
  std::uint64_t rounds_total = 0;
  std::uint32_t phase = 0;  // Phase enum value
  float d_loss = 0.0f;
  float g_loss = 0.0f;
  float gp = 0.0f;
  float wasserstein = 0.0f;
  std::uint64_t bytes = 0;  // totals across every link this party drives
  std::uint64_t messages = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t corrupt_frames = 0;
  std::uint64_t mem_live_bytes = 0;
  std::uint64_t mem_peak_bytes = 0;
  std::uint64_t alerts_info = 0;
  std::uint64_t alerts_warn = 0;
  std::uint64_t alerts_fatal = 0;
  std::vector<LinkTraffic> links;
  // Sampling-profiler block (empty / zero when --sample-hz is off): total
  // drained samples and the top-k hottest leaf functions by sample count.
  std::uint64_t samples_total = 0;
  std::vector<HotFrame> hot;
  // Full MetricsRegistry::to_prometheus() text; the Collector re-labels it
  // with party="..." for the scrape endpoint.
  std::string prom;

  // JSON object for /status consumers (omits `prom`, reports its size).
  std::string to_json() const;
};

// Little-endian snapshot codec (schema version checked on decode). Throws
// net::WireError on truncated, oversized, or trailing-garbage input.
std::vector<std::uint8_t> serialize_snapshot(const Snapshot& snap);
Snapshot deserialize_snapshot(const std::vector<std::uint8_t>& bytes);

// Builds a snapshot of THIS process: samples `status` (may be null),
// the MetricsRegistry (net.* traffic counters + Prometheus dump), the
// tensor memory ledger, and the HealthLog. Never blocks on training.
Snapshot collect_snapshot(const std::string& party, const LiveStatus* status);

}  // namespace gtv::obs::agg
