#include "obs/agg.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "obs/json.h"
#include "obs/thread_name.h"
#include "obs/trace.h"

namespace gtv::obs::agg {

namespace {

// Prometheus label-value escaping: backslash, double quote, newline.
std::string label_escape(const std::string& s) { return json::prom_label_escape(s); }

// Base family name of a sample line: metric name with any histogram
// series suffix stripped. Fallback for dumps missing # TYPE headers.
std::string family_of_sample(const std::string& line) {
  std::size_t end = line.find_first_of("{ ");
  if (end == std::string::npos) end = line.size();
  std::string name = line.substr(0, end);
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
      return name.substr(0, name.size() - n);
    }
  }
  return name;
}

}  // namespace

std::string inject_party_label(const std::string& line, const std::string& party) {
  if (line.empty() || line[0] == '#') return line;
  const std::string label = "party=\"" + label_escape(party) + "\"";
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string::npos && (space == std::string::npos || brace < space)) {
    // Existing label set: party goes first. "{}" (empty set) gets no comma.
    const bool empty_set = brace + 1 < line.size() && line[brace + 1] == '}';
    return line.substr(0, brace + 1) + label + (empty_set ? "" : ",") +
           line.substr(brace + 1);
  }
  if (space == std::string::npos) return line;  // not a sample line; pass through
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

std::string aggregate_prometheus(
    const std::vector<std::pair<std::string, std::string>>& per_party) {
  struct Family {
    std::string type_line;
    std::vector<std::string> samples;
  };
  std::vector<std::string> order;
  std::map<std::string, Family> families;

  for (const auto& [party, text] : per_party) {
    std::string current;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (line.rfind("# TYPE ", 0) == 0) {
        std::istringstream header(line.substr(7));
        header >> current;
        if (families.find(current) == families.end()) {
          order.push_back(current);
          families[current].type_line = line;
        }
        continue;
      }
      if (line[0] == '#') continue;  // HELP and friends: dropped on merge
      std::string family = current;
      if (family.empty()) {
        family = family_of_sample(line);
        if (families.find(family) == families.end()) order.push_back(family);
      }
      families[family].samples.push_back(inject_party_label(line, party));
    }
  }

  std::ostringstream out;
  for (const std::string& name : order) {
    const Family& fam = families[name];
    if (!fam.type_line.empty()) out << fam.type_line << "\n";
    for (const std::string& sample : fam.samples) out << sample << "\n";
  }
  return out.str();
}

// --- SnapshotPublisher -----------------------------------------------------------

SnapshotPublisher::SnapshotPublisher(std::string party, std::string host,
                                     std::uint16_t port, PublisherOptions options)
    : party_(std::move(party)),
      host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      link_(party_ + "->" + kCollectorParty) {}

SnapshotPublisher::~SnapshotPublisher() { stop(); }

void SnapshotPublisher::start() {
  if (started_) return;
  started_ = true;
  stopping_.store(false);
  thread_ = std::thread([this] { run(); });
}

void SnapshotPublisher::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stopping_.store(true);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_ = false;
}

net::ClockSync SnapshotPublisher::clock_sync() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transport_ ? transport_->clock_sync(kCollectorParty) : net::ClockSync{};
}

bool SnapshotPublisher::ensure_connected() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connected_) return true;
  }
  // One dial per call; run() owns the backoff between calls so stop() can
  // interrupt the wait.
  net::TcpOptions tcp = options_.tcp;
  tcp.connect_attempts = 1;
  auto fresh = std::make_unique<net::TcpTransport>(party_, tcp);
  try {
    fresh->connect_peer(kCollectorParty, host_, port_);
  } catch (const net::TransportError&) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  transport_ = std::move(fresh);
  connected_ = true;
  return true;
}

bool SnapshotPublisher::publish_once(std::uint64_t seq) {
  Snapshot snap = collect_snapshot(party_, status_);
  snap.seq = seq;
  const auto payload = serialize_snapshot(snap);
  std::lock_guard<std::mutex> lock(mu_);
  if (!transport_) return false;
  try {
    transport_->send(link_, payload);
    return true;
  } catch (const net::TransportError&) {
    connected_ = false;
    return false;
  }
}

void SnapshotPublisher::run() {
  set_current_thread_name("gtv-snap-pub");
  int backoff_ms = options_.reconnect_backoff_ms;
  std::uint64_t seq = 0;
  auto wait_ms = [this](int ms) {
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                      [this] { return stopping_.load(); });
  };
  while (!stopping_.load()) {
    if (!ensure_connected()) {
      wait_ms(backoff_ms);
      backoff_ms = std::min(backoff_ms * 2, options_.reconnect_backoff_max_ms);
      continue;
    }
    backoff_ms = options_.reconnect_backoff_ms;
    if (publish_once(++seq)) {
      published_.fetch_add(1);
      wait_ms(options_.interval_ms);
    } else {
      send_failures_.fetch_add(1);
    }
  }
  // Final flush so the Collector sees the party's end state even when the
  // last interval tick landed mid-round.
  if (ensure_connected() && publish_once(++seq)) published_.fetch_add(1);
}

// --- Collector -------------------------------------------------------------------

Collector::Collector(CollectorOptions options)
    : options_(options), latency_(default_latency_bounds_ms()) {
  started_us_ = TraceSink::now_us();
}

Collector::~Collector() { stop(); }

std::uint16_t Collector::listen(std::uint16_t port) {
  transport_ = std::make_unique<net::TcpTransport>(kCollectorParty);
  const std::uint16_t bound = transport_->listen(port);
  ingest_thread_ = std::thread([this] { ingest_loop(); });
  return bound;
}

void Collector::stop() {
  stopping_.store(true);
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (http_fd_ >= 0) {
    ::shutdown(http_fd_, SHUT_RDWR);
    ::close(http_fd_);
    http_fd_ = -1;
  }
  if (http_thread_.joinable()) http_thread_.join();
  transport_.reset();
}

void Collector::ingest_loop() {
  set_current_thread_name("gtv-agg-ingest");
  while (!stopping_.load()) {
    bool drained_any = false;
    for (const std::string& peer : transport_->peers()) {
      const std::string link = peer + "->" + kCollectorParty;
      // Drain everything queued; decode raw frames (CRC enforced) instead
      // of Transport::recv so a reconnecting publisher's restarted seq
      // numbering is not mistaken for duplicates.
      for (;;) {
        std::vector<std::uint8_t> bytes;
        try {
          bytes = transport_->fetch_frame(link, /*timeout_ms=*/0);
        } catch (const net::TimeoutError&) {
          break;  // queue empty
        } catch (const net::TransportError&) {
          break;  // peer dropped with nothing queued; publisher will re-dial
        }
        try {
          const net::Frame frame = net::decode_frame(bytes);
          ingest(deserialize_snapshot(frame.payload));
          drained_any = true;
        } catch (const net::TransportError&) {
          std::lock_guard<std::mutex> lock(mu_);
          ++bad_frames_;
        }
      }
    }
    if (!drained_any && !stopping_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.poll_interval_ms));
    }
  }
}

void Collector::ingest(Snapshot snap) {
  const std::uint64_t now_us = TraceSink::now_us();
  net::ClockSync sync;
  std::uint64_t generation = 0;
  if (transport_) {
    sync = transport_->clock_sync(snap.party);
    generation = transport_->conn_generation(snap.party);
  }
  std::lock_guard<std::mutex> lock(mu_);
  PartyView& view = views_[snap.party];
  view.snapshots += 1;
  view.last_seen_us = now_us;
  if (generation > 0) view.reconnects = generation - 1;
  if (sync.valid) {
    view.have_clock = true;
    view.clock_offset_us = sync.offset_us;
    view.clock_rtt_us = sync.rtt_us;
    // Align the sender's timestamp onto our clock; clamp at zero in case
    // the offset error exceeds the actual transit time.
    const double sent_here_us = static_cast<double>(snap.t_us) - sync.offset_us;
    const double lat_ms =
        std::max(0.0, (static_cast<double>(now_us) - sent_here_us) / 1000.0);
    latency_.record(lat_ms);
  }
  const double round = static_cast<double>(snap.round);
  if (view.loss_history.empty() || view.loss_history.back()[0] != round) {
    view.loss_history.push_back({round, snap.d_loss, snap.g_loss});
    if (view.loss_history.size() > options_.history) {
      view.loss_history.erase(view.loss_history.begin());
    }
  } else {
    view.loss_history.back() = {round, snap.d_loss, snap.g_loss};
  }
  view.latest = std::move(snap);
  views_cv_.notify_all();
}

void Collector::fill_derived_locked(PartyView& view, std::uint64_t now_us) const {
  view.age_ms = view.last_seen_us <= now_us
                    ? static_cast<double>(now_us - view.last_seen_us) / 1000.0
                    : 0.0;
  view.stale = view.age_ms > static_cast<double>(options_.stale_after_ms);
}

std::vector<PartyView> Collector::parties() const {
  const std::uint64_t now_us = TraceSink::now_us();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PartyView> out;
  out.reserve(views_.size());
  for (const auto& [party, view] : views_) {
    out.push_back(view);
    fill_derived_locked(out.back(), now_us);
  }
  return out;
}

std::size_t Collector::party_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return views_.size();
}

bool Collector::wait_for_snapshots(std::size_t min_parties,
                                   std::uint64_t min_snapshots,
                                   int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return views_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    std::size_t satisfied = 0;
    for (const auto& [party, view] : views_) {
      if (view.snapshots >= min_snapshots) ++satisfied;
    }
    return satisfied >= min_parties;
  });
}

double Collector::latency_ms(double percentile) const {
  std::lock_guard<std::mutex> lock(mu_);
  return latency_.percentile(percentile);
}

std::string Collector::status_json() const {
  const std::uint64_t now_us = TraceSink::now_us();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema_version\":1,\"collector\":{\"uptime_ms\":"
     << static_cast<double>(now_us - started_us_) / 1000.0
     << ",\"stale_after_ms\":" << options_.stale_after_ms
     << ",\"bad_frames\":" << bad_frames_
     << ",\"snapshot_latency_p50_ms\":" << latency_.percentile(50)
     << ",\"snapshot_latency_p99_ms\":" << latency_.percentile(99)
     << ",\"parties\":" << views_.size() << "},\"parties\":[";
  bool first = true;
  for (const auto& [party, stored] : views_) {
    PartyView view = stored;
    fill_derived_locked(view, now_us);
    if (!first) os << ",";
    first = false;
    os << "{\"party\":\"" << json_escape(party) << "\",\"stale\":"
       << (view.stale ? "true" : "false") << ",\"age_ms\":" << view.age_ms
       << ",\"snapshots\":" << view.snapshots
       << ",\"reconnects\":" << view.reconnects << ",\"clock\":{\"valid\":"
       << (view.have_clock ? "true" : "false")
       << ",\"offset_us\":" << view.clock_offset_us
       << ",\"rtt_us\":" << view.clock_rtt_us << "},\"snapshot\":"
       << view.latest.to_json() << ",\"loss_history\":[";
    for (std::size_t i = 0; i < view.loss_history.size(); ++i) {
      if (i > 0) os << ",";
      os << "[" << view.loss_history[i][0] << "," << view.loss_history[i][1] << ","
         << view.loss_history[i][2] << "]";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string Collector::prometheus() const {
  const std::uint64_t now_us = TraceSink::now_us();
  std::vector<std::pair<std::string, std::string>> per_party;
  std::ostringstream own;
  {
    std::lock_guard<std::mutex> lock(mu_);
    per_party.reserve(views_.size());
    own << "# TYPE gtv_agg_snapshots_total counter\n";
    for (const auto& [party, view] : views_) {
      per_party.emplace_back(party, view.latest.prom);
      own << "gtv_agg_snapshots_total{party=\"" << label_escape(party) << "\"} "
          << view.snapshots << "\n";
    }
    own << "# TYPE gtv_agg_up gauge\n";
    for (const auto& [party, stored] : views_) {
      PartyView view = stored;
      fill_derived_locked(view, now_us);
      own << "gtv_agg_up{party=\"" << label_escape(party) << "\"} "
          << (view.stale ? 0 : 1) << "\n";
    }
    own << "# TYPE gtv_agg_clock_offset_us gauge\n";
    for (const auto& [party, view] : views_) {
      if (!view.have_clock) continue;
      own << "gtv_agg_clock_offset_us{party=\"" << label_escape(party) << "\"} "
          << view.clock_offset_us << "\n";
    }
  }
  return aggregate_prometheus(per_party) + own.str();
}

std::string Collector::offsets_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"schema_version\":1,\"reference\":\"" << kCollectorParty
     << "\",\"offsets\":{";
  bool first = true;
  for (const auto& [party, view] : views_) {
    if (!view.have_clock) continue;
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(party) << "\":{\"offset_us\":" << view.clock_offset_us
       << ",\"rtt_us\":" << view.clock_rtt_us << "}";
  }
  os << "}}";
  return os.str();
}

// --- HTTP scrape endpoint --------------------------------------------------------

std::uint16_t Collector::serve_http(std::uint16_t port) {
  http_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (http_fd_ < 0) throw net::TransportError("agg: http socket() failed");
  const int one = 1;
  ::setsockopt(http_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(http_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw net::TransportError("agg: http bind 127.0.0.1:" + std::to_string(port) +
                              " failed: " + std::strerror(errno));
  }
  if (::listen(http_fd_, 16) != 0) throw net::TransportError("agg: http listen failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(http_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw net::TransportError("agg: http getsockname failed");
  }
  http_thread_ = std::thread([this] { http_loop(); });
  return ntohs(addr.sin_port);
}

void Collector::http_loop() {
  set_current_thread_name("gtv-agg-http");
  while (!stopping_.load()) {
    pollfd pfd{http_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    const int fd = ::accept(http_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Requests are one GET line from a scraper or gtv-top; serving them
    // inline keeps the endpoint single-threaded and unkillable by a slow
    // client (bounded read below).
    handle_http_client(fd);
    ::close(fd);
  }
}

void Collector::handle_http_client(int fd) {
  std::string request;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(2000);
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    pollfd pfd{fd, POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count());
    if (::poll(&pfd, 1, std::max(wait_ms, 1)) <= 0) return;
    char buf[1024];
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;  // sampler signal; re-poll
    if (r <= 0) return;
    request.append(buf, static_cast<std::size_t>(r));
  }
  std::istringstream line(request.substr(0, request.find("\r\n")));
  std::string method, path;
  line >> method >> path;

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  std::string status = "200 OK";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = prometheus();
  } else if (path == "/status") {
    content_type = "application/json";
    body = status_json();
  } else if (path == "/" || path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }

  std::ostringstream response;
  response << "HTTP/1.0 " << status << "\r\nContent-Type: " << content_type
           << "\r\nContent-Length: " << body.size()
           << "\r\nConnection: close\r\n\r\n" << body;
  const std::string out = response.str();
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t w =
        ::send(fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(w);
  }
}

}  // namespace gtv::obs::agg
