#include "obs/health.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/blackbox.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::obs {

namespace {

// -1 = uninitialised, 0 = off, 1 = on (same discipline as timing_enabled).
std::atomic<int> g_health_state{-1};

int health_state_from_env() {
  const char* v = std::getenv("GTV_HEALTH");
  if (v == nullptr || v[0] == '\0' || std::string(v) == "0") return 0;
  return 1;
}

Counter& severity_counter(Severity severity) {
  return MetricsRegistry::instance().counter(std::string("gtv.health.alerts.") +
                                             to_string(severity));
}

// JSON has no NaN/Inf literals; clamp pathological observations (the very
// thing health monitoring exists to catch) into representable numbers.
double json_num(double v) { return json::safe_num(v); }

}  // namespace

bool health_enabled() {
  int state = g_health_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = health_state_from_env();
    g_health_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_health_enabled(bool enabled) {
  g_health_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kFatal: return "fatal";
  }
  return "unknown";
}

std::string HealthAlert::to_json() const {
  std::ostringstream os;
  os << "{\"severity\":\"" << to_string(severity) << "\",\"rule\":\""
     << json_escape(rule) << "\",\"round\":" << round << ",\"value\":" << json_num(value)
     << ",\"threshold\":" << json_num(threshold) << ",\"detail\":\"" << json_escape(detail)
     << "\"}";
  return os.str();
}

double ModuleGradStats::update_ratio() const {
  return update_norm / (weight_norm + 1e-12);
}

std::string ModuleGradStats::to_json() const {
  std::ostringstream os;
  os << "{\"module\":\"" << json_escape(module) << "\",\"grad_norm\":" << json_num(grad_norm)
     << ",\"weight_norm\":" << json_num(weight_norm) << ",\"update_norm\":" << json_num(update_norm)
     << ",\"grad_max_abs\":" << json_num(grad_max_abs) << ",\"update_ratio\":" << json_num(update_ratio())
     << ",\"nonfinite\":" << nonfinite << "}";
  return os.str();
}

std::string ColumnProbe::to_json() const {
  std::ostringstream os;
  os << "{\"column\":\"" << json_escape(column) << "\",\"jsd\":" << json_num(jsd)
     << ",\"mean_drift\":" << json_num(mean_drift) << ",\"std_drift\":" << json_num(std_drift) << "}";
  return os.str();
}

std::uint64_t RoundHealth::nonfinite_grads() const {
  std::uint64_t total = 0;
  for (const auto& m : modules) total += m.nonfinite;
  return total;
}

bool RoundHealth::has_fatal() const {
  for (const auto& a : alerts) {
    if (a.severity == Severity::kFatal) return true;
  }
  return false;
}

std::string RoundHealth::to_json() const {
  std::ostringstream os;
  os << "{\"collected\":" << (collected ? "true" : "false") << ",\"modules\":[";
  for (std::size_t i = 0; i < modules.size(); ++i) {
    os << (i == 0 ? "" : ",") << modules[i].to_json();
  }
  os << "],\"probes\":[";
  for (std::size_t i = 0; i < probes.size(); ++i) {
    os << (i == 0 ? "" : ",") << probes[i].to_json();
  }
  os << "],\"alerts\":[";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    os << (i == 0 ? "" : ",") << alerts[i].to_json();
  }
  os << "]}";
  return os.str();
}

// --- HealthMonitor -----------------------------------------------------------

void HealthMonitor::Ewma::update(double v, double alpha) {
  value = samples == 0 ? v : (1.0 - alpha) * value + alpha * v;
  ++samples;
}

HealthMonitor::HealthMonitor(HealthThresholds thresholds) : thresholds_(thresholds) {}

void HealthMonitor::emit(HealthAlert alert, RoundHealth& health) {
  severity_counter(alert.severity).add();
  MetricsRegistry::instance().counter("gtv.health.alerts.total").add();
  TraceSink& sink = TraceSink::instance();
  if (sink.active()) {
    const std::string name = "health." + alert.rule;
    sink.emit_instant(name.c_str(), TraceSink::now_us(), to_string(alert.severity),
                      alert.value, alert.threshold);
  }
  HealthLog::instance().record(alert);
  health.alerts.push_back(std::move(alert));
}

void HealthMonitor::evaluate(std::size_t round, float d_loss, float g_loss, float gp,
                             float wasserstein, RoundHealth& health) {
  const HealthThresholds& t = thresholds_;
  MetricsRegistry& registry = MetricsRegistry::instance();

  // --- tier 1: per-module gradient rules --------------------------------------
  for (const auto& m : health.modules) {
    registry.gauge("gtv.health." + m.module + ".grad_norm").set(m.grad_norm);
    registry.gauge("gtv.health." + m.module + ".update_ratio").set(m.update_ratio());

    if (m.nonfinite > 0) {
      emit({Severity::kFatal, "nonfinite_grad", round,
            static_cast<double>(m.nonfinite), 0.0,
            m.module + ": NaN/Inf gradient elements"},
           health);
      // Norms computed over non-finite grads are meaningless; skip the rest.
      continue;
    }
    const bool critic = m.module.size() >= 2 &&
                        m.module.compare(m.module.size() - 2, 2, ".D") == 0;
    if (m.grad_norm > t.grad_norm_fatal) {
      emit({critic ? Severity::kFatal : Severity::kWarn,
            critic ? "critic_grad_norm" : "generator_grad_norm", round, m.grad_norm,
            t.grad_norm_fatal, m.module + ": gradient L2 norm exploded"},
           health);
    }
    if (m.update_ratio() > t.update_ratio_max) {
      emit({Severity::kWarn, "update_ratio", round, m.update_ratio(),
            t.update_ratio_max, m.module + ": update-to-weight ratio (LR too hot?)"},
           health);
    }
    auto& ewma = grad_ewma_[m.module];
    if (ewma.primed() && m.grad_norm > t.grad_growth_ratio * (ewma.value + 1e-12)) {
      emit({Severity::kWarn, "grad_norm_growth", round, m.grad_norm,
            t.grad_growth_ratio * ewma.value,
            m.module + ": grad norm vs EWMA baseline " + std::to_string(ewma.value)},
           health);
    }
    ewma.update(m.grad_norm, t.ewma_alpha);
  }

  // --- tier 2: WGAN-GP loss detectors -----------------------------------------
  if (!std::isfinite(d_loss) || !std::isfinite(g_loss) || !std::isfinite(gp) ||
      !std::isfinite(wasserstein)) {
    emit({Severity::kFatal, "nonfinite_loss", round, 0.0, 0.0,
          "d_loss/g_loss/gp/wasserstein contains NaN or Inf"},
         health);
  } else {
    // Recorded only for finite penalties — a NaN would poison the histogram.
    registry.histogram("gtv.health.gp").record(std::abs(static_cast<double>(gp)));
    if (std::abs(gp) > t.gp_max) {
      emit({Severity::kWarn, "gp_magnitude", round, std::abs(gp), t.gp_max,
            "gradient-penalty value left its healthy band"},
           health);
    }

    const bool warmed = round >= t.detector_warmup_rounds;
    const double w = wasserstein;
    if (warmed && wasserstein_ewma_.primed()) {
      const double baseline = std::abs(wasserstein_ewma_.value) + 1e-3;
      const double drift = std::abs(w - wasserstein_ewma_.value);
      if (drift > t.wasserstein_drift_ratio * baseline) {
        emit({Severity::kWarn, "wasserstein_drift", round, drift,
              t.wasserstein_drift_ratio * baseline,
              "Wasserstein estimate drifted from EWMA " +
                  std::to_string(wasserstein_ewma_.value)},
             health);
      }
    }
    wasserstein_ewma_.update(w, t.ewma_alpha);

    wasserstein_signs_.push_back(w >= 0.0 ? 1 : -1);
    if (wasserstein_signs_.size() > t.sign_flip_window) {
      wasserstein_signs_.erase(wasserstein_signs_.begin());
    }
    if (warmed && wasserstein_signs_.size() == t.sign_flip_window) {
      std::size_t flips = 0;
      for (std::size_t i = 1; i < wasserstein_signs_.size(); ++i) {
        if (wasserstein_signs_[i] != wasserstein_signs_[i - 1]) ++flips;
      }
      if (flips >= t.sign_flip_max) {
        emit({Severity::kWarn, "wasserstein_sign_flip", round,
              static_cast<double>(flips), static_cast<double>(t.sign_flip_max),
              "Wasserstein estimate oscillating around zero"},
             health);
      }
    }

    const double d_mag = std::abs(static_cast<double>(d_loss));
    loss_fast_.update(d_mag, 0.5);
    loss_slow_.update(d_mag, 0.05);
    if (round >= t.detector_warmup_rounds &&
        loss_fast_.value > t.loss_divergence_ratio * (loss_slow_.value + 1e-6)) {
      emit({Severity::kWarn, "loss_divergence", round, loss_fast_.value,
            t.loss_divergence_ratio * loss_slow_.value,
            "critic loss magnitude diverging from its slow baseline"},
           health);
    }

    // Stalled training: the loss signal stopped moving at all.
    const double progress = d_mag + std::abs(static_cast<double>(g_loss));
    const double rel_change =
        std::abs(progress - last_progress_) / (std::abs(last_progress_) + 1e-9);
    stalled_rounds_ = (round > 0 && rel_change < t.stall_epsilon) ? stalled_rounds_ + 1 : 0;
    last_progress_ = progress;
    if (stalled_rounds_ >= t.stall_window) {
      emit({Severity::kInfo, "training_stalled", round,
            static_cast<double>(stalled_rounds_), static_cast<double>(t.stall_window),
            "no loss movement for " + std::to_string(stalled_rounds_) + " rounds"},
           health);
      stalled_rounds_ = 0;  // re-arm instead of alerting every round
    }
  }

  // --- tier 3: sample-quality probe rules --------------------------------------
  if (round >= t.probe_warmup_rounds) {
    for (const auto& p : health.probes) {
      if (p.jsd >= 0.0 && p.jsd > t.probe_jsd_max) {
        emit({Severity::kWarn, "probe_jsd", round, p.jsd, t.probe_jsd_max,
              p.column + ": marginal diverged from real shard (collapse?)"},
             health);
      }
      if (p.jsd < 0.0 && std::abs(p.mean_drift) > t.probe_mean_drift_max) {
        emit({Severity::kWarn, "probe_mean_drift", round, std::abs(p.mean_drift),
              t.probe_mean_drift_max, p.column + ": generated mean drifted"},
             health);
      }
      if (p.jsd < 0.0 && std::abs(p.std_drift) > t.probe_std_drift_max) {
        emit({Severity::kWarn, "probe_std_drift", round, std::abs(p.std_drift),
              t.probe_std_drift_max,
              p.column + ": generated spread collapsed or blew up"},
             health);
      }
    }
  }
}

// --- HealthLog ---------------------------------------------------------------

HealthLog& HealthLog::instance() {
  static HealthLog log;
  return log;
}

void HealthLog::record(const HealthAlert& alert) {
  bb::note_alert(static_cast<std::uint32_t>(alert.severity), alert.round,
                 alert.rule.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.push_back(alert);
}

std::vector<HealthAlert> HealthLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

std::size_t HealthLog::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_.size();
}

std::size_t HealthLog::count(Severity severity) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& a : alerts_) {
    if (a.severity == severity) ++n;
  }
  return n;
}

void HealthLog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.clear();
}

std::string HealthLog::alerts_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < alerts_.size(); ++i) {
    os << (i == 0 ? "" : ",") << alerts_[i].to_json();
  }
  os << ']';
  return os.str();
}

std::string HealthLog::alerts_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& a : alerts_) os << a.to_json() << '\n';
  return os.str();
}

std::string HealthLog::summary_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t by_severity[3] = {0, 0, 0};
  std::map<std::string, std::size_t> rules;
  for (const auto& a : alerts_) {
    by_severity[static_cast<int>(a.severity)] += 1;
    rules[a.rule] += 1;
  }
  std::ostringstream os;
  os << "{\"enabled\":" << (health_enabled() ? "true" : "false")
     << ",\"total\":" << alerts_.size() << ",\"info\":" << by_severity[0]
     << ",\"warn\":" << by_severity[1] << ",\"fatal\":" << by_severity[2]
     << ",\"rules\":{";
  bool first = true;
  for (const auto& [rule, n] : rules) {
    os << (first ? "" : ",") << '"' << json_escape(rule) << "\":" << n;
    first = false;
  }
  os << "}}";
  return os.str();
}

void write_health_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_health_json: cannot open " + path);
  HealthLog& log = HealthLog::instance();
  out << "{\"schema_version\":1,\"summary\":" << log.summary_json()
      << ",\"alerts\":" << log.alerts_json() << "}\n";
}

// --- probe math --------------------------------------------------------------

double jensen_shannon(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) {
    throw std::invalid_argument("jensen_shannon: length mismatch");
  }
  double sp = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) {
      throw std::invalid_argument("jensen_shannon: negative weight");
    }
    sp += p[i];
    sq += q[i];
  }
  if (sp <= 0.0 || sq <= 0.0) return 0.0;
  double div = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double pi = p[i] / sp;
    const double qi = q[i] / sq;
    const double mi = 0.5 * (pi + qi);
    if (pi > 0.0) div += 0.5 * pi * std::log2(pi / mi);
    if (qi > 0.0) div += 0.5 * qi * std::log2(qi / mi);
  }
  return std::clamp(div, 0.0, 1.0);
}

}  // namespace gtv::obs
