#pragma once

// Always-on statistical sampling profiler.
//
// Two signal-driven sample streams feed per-thread lock-free rings:
//
//   * on-CPU:  a process-CPU-time timer (timer_create(CLOCK_PROCESS_CPUTIME_ID),
//     the POSIX spelling of the classic CLOCK_PROF/ITIMER_PROF profiler clock)
//     delivers SIGPROF at cpu_hz ticks of *consumed CPU time*, so the signal
//     lands on whichever thread is actually burning cycles — a textbook
//     CPU-weighted sampler.
//
//   * off-CPU: a low-rate CLOCK_MONOTONIC sweep (driven from the aggregator
//     thread, which tgkills every task in /proc/self/task with SIGUSR2 — the
//     same fan-out the blackbox stack dumper uses) catches threads parked in
//     recv()/condvars. The handler compares the thread's CLOCK_THREAD_CPUTIME_ID
//     advance against wall-clock elapsed since its previous sweep tick: a
//     thread that consumed almost no CPU over the interval is blocked, and its
//     backtrace (pointing into read/poll/pthread_cond_wait) is recorded as an
//     off-CPU sample. Busy threads are skipped — SIGPROF already covers them.
//
// Each sample is tagged with the party's current round/phase read from the
// LiveStatus atomics. A background aggregator ("gtv-sampler") drains the rings
// every drain_interval_ms and folds samples by (thread, phase, state, PC
// vector); symbolization (dladdr + demangle, module+offset fallback from the
// mapping base) happens lazily at report time, never in signal context.
//
// See DESIGN.md §5f for the async-signal-safety argument and ring format.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gtv::obs::sampler {

// Hard caps sized for the static ring pool (all BSS, no allocation on the
// signal path). 40 frames × 8 bytes + tags ≈ 340 B/slot.
inline constexpr int kMaxSampleFrames = 40;
inline constexpr std::size_t kRingSlots = 64;   // per thread; drained every ~50 ms
inline constexpr std::size_t kMaxThreads = 64;  // beyond this: counted, dropped
inline constexpr std::uint32_t kFoldedFormatVersion = 1;

struct SamplerOptions {
  int cpu_hz = 97;             // SIGPROF rate over process CPU time (prime: avoids beats)
  int wall_hz = 13;            // off-CPU sweep rate over wall time
  int drain_interval_ms = 50;  // aggregator drain cadence
  int top_k = 5;               // hot entries surfaced into Snapshot frames
  // Optional pretty-printer for the phase tag (e.g. agg::Phase names). Must
  // return a stable string for any u32; nullptr renders "p<N>". Called from
  // ordinary (non-signal) context only.
  const char* (*phase_name)(std::uint32_t) = nullptr;
};

struct SamplerStats {
  std::uint64_t cpu_samples = 0;     // drained + folded on-CPU samples
  std::uint64_t offcpu_samples = 0;  // drained + folded off-CPU samples
  std::uint64_t wall_sweeps = 0;     // completed SIGUSR2 fan-outs
  std::uint64_t dropped = 0;         // ring-full + thread-pool-exhausted
  std::uint64_t threads_seen = 0;    // rings ever claimed
};

struct HotEntry {
  std::string frame;  // demangled leaf (self) function
  std::uint64_t samples = 0;
  bool on_cpu = true;
};

class Sampler {
 public:
  using Options = SamplerOptions;

  // Arms the process-wide sampler: installs the SIGPROF/SIGUSR2 handlers,
  // pre-warms glibc backtrace (it lazily dlopens libgcc — must happen outside
  // signal context), starts the timers and the aggregator thread. `round` /
  // `phase` may be nullptr (samples tagged 0). Re-arming after stop() resets
  // all counters and folded state. Returns the singleton; never destroyed
  // (signal handlers may race teardown), only disarmed.
  static Sampler* start_global(Options options,
                               const std::atomic<std::uint64_t>* round = nullptr,
                               const std::atomic<std::uint32_t>* phase = nullptr);

  // The armed instance, or nullptr when sampling is off / stopped.
  static Sampler* get();

  // Disarms timers, performs a final drain, joins the aggregator. Idempotent.
  // Folded state stays readable (folded()/top_hot()/stats()) after stop.
  void stop();

  bool running() const;
  SamplerStats stats() const;

  // Top-k hottest leaf functions by sample count across both states.
  std::vector<HotEntry> top_hot(std::size_t k) const;

  // Collapsed-stack report: '#'-prefixed metadata header, then one line per
  // unique stack, root-first, space + count last:
  //   <party>;<cpu|offcpu>;<phase>;<thread>;outer;...;leaf 42
  // Deterministic (sorted) for a given fold state.
  std::string folded(const std::string& party) const;
  bool write_folded(const std::string& path, const std::string& party) const;

 private:
  Sampler() = default;
  struct Impl;
  Impl* impl_ = nullptr;
};

// One PC -> display frame. Exported symbol via dladdr (demangled, truncated at
// the argument list) when available; else "module+0x<off>" relative to the
// mapping base (resolvable offline via addr2line); else raw "0x<pc>".
// `resolved` (optional) reports whether a symbol name was found.
std::string symbolize_pc(std::uintptr_t pc, bool* resolved = nullptr);

// True for symbolic frames — excludes "module+0x" and raw-hex fallbacks.
bool frame_is_resolved(const std::string& frame);

}  // namespace gtv::obs::sampler
