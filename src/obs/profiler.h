// gtv::obs — op-level profiler for the autograd/tensor substrate.
//
// An OpScope wraps one op invocation (ag::matmul forward, a backward
// closure, nn::Linear::forward, ...). Scopes nest on a per-thread stack, so
// each op is charged both its *total* wall time and its *self* time (total
// minus nested profiled ops); self times therefore partition the wall clock
// and sum to the instrumented region's duration without double counting.
// make_op additionally charges the bytes of every operand/result tensor to
// the innermost open scope, giving a bytes-touched column per op.
//
// Gating follows the ScopedTimer disarm discipline: profiling is off by
// default, switched on by GTV_PROFILE (any value except "0") or
// set_profiling_enabled(); a disarmed OpScope is a single relaxed atomic
// load and never reads the clock.
//
// Profiler::report() renders the aggregate as a sorted text table;
// Profiler::to_json() emits the machine-readable form (stamped with
// "schema_version" so downstream tooling such as tools/gtv-prof can evolve
// safely).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace gtv::obs {

// Global switch for op profiling (see file comment).
bool profiling_enabled();
void set_profiling_enabled(bool enabled);

struct OpStats {
  std::uint64_t calls = 0;
  std::uint64_t total_us = 0;  // wall time inside the op, children included
  std::uint64_t self_us = 0;   // total_us minus time in nested profiled ops
  std::uint64_t bytes = 0;     // operand + result tensor bytes touched
};

class Profiler {
 public:
  static Profiler& instance();

  void record(const char* name, const char* suffix, std::uint64_t total_us,
              std::uint64_t self_us, std::uint64_t bytes);

  std::map<std::string, OpStats> snapshot() const;
  // Text table sorted by self time (descending) with a totals row.
  std::string report() const;
  // {"schema_version":N,"ops":{"<op>":{"calls":..,"total_us":..,...}}}
  std::string to_json() const;
  void reset();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;

  mutable std::mutex mu_;
  std::map<std::string, OpStats> stats_;
};

// RAII op span. `suffix` (e.g. ".bwd") is appended to the op name at
// aggregation time so backward closures share the forward op's label space.
class OpScope {
 public:
  explicit OpScope(const char* name, const char* suffix = nullptr);
  ~OpScope();

  // Charges tensor bytes to the innermost open scope on this thread.
  // No-op when profiling is off or no scope is open.
  static void charge_bytes(std::uint64_t bytes);

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  const char* name_;
  const char* suffix_;
  std::uint64_t start_us_ = 0;
  std::uint64_t saved_child_us_ = 0;
  std::uint64_t saved_bytes_ = 0;
  bool active_;
};

}  // namespace gtv::obs
