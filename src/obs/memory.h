// gtv::obs — tensor memory accounting.
//
// Every gtv::Tensor buffer is allocated through TrackingAllocator, which
// charges the byte count to a process-wide ledger: live bytes, the
// process-lifetime high-water mark, and allocation/free counts. Updates are
// relaxed atomics, so the accounting is always on (same contract as the
// TrafficMeter counters) and never contends on a lock.
//
// MemPeakScope layers phase attribution on top: while a scope is active,
// the ledger also tracks the peak live bytes observed inside that scope, so
// RoundTelemetry can say *which phase* of a training round owned the
// allocation high-water mark. Scopes must strictly nest; attribution is
// exact for a single training thread and process-global (conservative) when
// several trainers run concurrently, because the live counter itself is
// process-global.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace gtv::obs {

struct MemStats {
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;  // process-lifetime high-water mark
  std::uint64_t alloc_count = 0;
  std::uint64_t free_count = 0;
};

MemStats memory_stats();
// Rewinds the high-water mark to the current live bytes (benchmark repeats).
void reset_memory_peak();

// Charges/releases `bytes` on the ledger. Called by TrackingAllocator; also
// usable by future non-vector buffers.
void account_alloc(std::size_t bytes) noexcept;
void account_free(std::size_t bytes) noexcept;

// Copies the ledger into the MetricsRegistry as `tensor.mem.live_bytes`,
// `tensor.mem.peak_bytes`, `tensor.mem.alloc_count`, `tensor.mem.free_count`
// gauges so memory lands in the same telemetry snapshot as timing/traffic.
void publish_memory_gauges();

// RAII watermark: peak live tensor bytes while this scope was active.
// On destruction, when `out_peak` was given, folds the observed peak in via
// max (so a scope re-entered across critic steps keeps the round's worst).
class MemPeakScope {
 public:
  explicit MemPeakScope(std::uint64_t* out_peak = nullptr);
  ~MemPeakScope();

  // Peak observed so far (valid while the scope is alive).
  std::uint64_t peak_bytes() const;

  MemPeakScope(const MemPeakScope&) = delete;
  MemPeakScope& operator=(const MemPeakScope&) = delete;

 private:
  int slot_;
  std::uint64_t* out_;
};

// Minimal allocator that routes byte accounting through the ledger. Used by
// gtv::Tensor for its element storage (see gtv::FloatVec).
template <typename T>
struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    account_alloc(n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }
  void deallocate(T* p, std::size_t n) noexcept {
    std::allocator<T>().deallocate(p, n);
    account_free(n * sizeof(T));
  }

  template <typename U>
  bool operator==(const TrackingAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace gtv::obs
