// gtv::obs — minimal JSON reader for the observability artefacts.
//
// The obs stack *emits* JSON by hand (metrics snapshots, profile tables,
// trace JSONL); this is the matching reader used by tools/gtv-prof to merge
// those artefacts and by tests to prove every emitted line parses back.
// It is a strict recursive-descent parser over the JSON grammar (objects,
// arrays, strings with escapes, numbers, true/false/null); it is not meant
// as a general-purpose library — no streaming, no comments, doubles only.
#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gtv::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  bool has(const std::string& key) const {
    return is_object() && object.find(key) != object.end();
  }
  // Object member access; throws std::out_of_range when absent.
  const Value& at(const std::string& key) const;
  // Object member or `fallback` number/string when absent.
  double num_or(const std::string& key, double fallback) const;
  std::string str_or(const std::string& key, const std::string& fallback) const;
};

// Parses exactly one JSON document (trailing whitespace allowed). Throws
// std::runtime_error with position info on malformed input.
Value parse(std::string_view text);

// --- emitter helpers --------------------------------------------------------
// The single home for the string/number escaping every hand-written JSON
// emitter in the obs stack shares (metrics snapshots, health logs,
// Prometheus exposition). Everything escape() emits parses back via
// parse() above.

// Escapes `"`, `\` and control characters for embedding in a JSON string.
std::string escape(const std::string& s);

// JSON has no NaN/Inf literals; clamps them (NaN -> 0, ±Inf -> ±1e308) so
// pathological observations stay representable.
double safe_num(double v);

// Prometheus label-value escaping: backslash, double quote, newline only
// (the exposition format, unlike JSON, leaves other bytes untouched).
std::string prom_label_escape(const std::string& s);

}  // namespace gtv::obs::json
