#pragma once

// Thread naming helper. Every thread the project spawns calls
// set_current_thread_name() first thing so that
//   * sampler profiles fold per-role stacks under a readable name,
//   * blackbox all-thread stack dumps attribute frames to roles,
//   * /proc/<pid>/task/<tid>/comm and gdb `info threads` are legible.
//
// Linux caps thread names at 15 chars + NUL; longer names are truncated
// rather than rejected so call sites can pass descriptive strings.

#include <cstring>

#if defined(__linux__)
#include <pthread.h>
#endif

namespace gtv::obs {

inline constexpr int kMaxThreadNameLen = 15;  // Linux TASK_COMM_LEN - 1

inline void set_current_thread_name(const char* name) {
#if defined(__linux__)
  char buf[kMaxThreadNameLen + 1];
  std::strncpy(buf, name, kMaxThreadNameLen);
  buf[kMaxThreadNameLen] = '\0';
  pthread_setname_np(pthread_self(), buf);
#else
  (void)name;
#endif
}

}  // namespace gtv::obs
