// gtv::obs::agg — live cross-party telemetry plane.
//
// A driver-side Collector listens on a dedicated TCP port (never the
// training links), each party runs a SnapshotPublisher that pushes
// obs::agg::Snapshot frames on "<party>->collector" at a fixed interval,
// and the Collector folds them into per-party views:
//
//     party process                       driver process
//   ┌────────────────┐   @hello+@clock   ┌──────────────────┐
//   │ LiveStatus ◄────── node loop       │ Collector        │
//   │ SnapshotPublisher ────────────────►│  · PartyView map │──► /metrics
//   │  (own TcpTransport)   snapshots    │  · staleness     │──► /status
//   └────────────────┘                   │  · clock offsets │──► gtv-top
//                                        └──────────────────┘
//
// Clock alignment rides on the transport handshake: every publisher dial
// runs the NTP-style @clock exchange (net/tcp.h), so the Collector knows
// peer_clock - collector_clock per party and can timestamp-align incoming
// frames (and export the offsets for gtv-prof --offsets).
//
// Robustness contract: a party that goes silent is marked stale after
// stale_after_ms (the Collector keeps serving its last snapshot); a party
// that reconnects resumes cleanly — the transport swaps the dead
// connection for the new one and the Collector bypasses Transport::recv's
// seq dedup (it decodes raw frames, CRC still enforced) so a publisher
// restart cannot be mistaken for replayed traffic.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/tcp.h"
#include "obs/metrics.h"
#include "obs/snapshot.h"

namespace gtv::obs::agg {

// The party name every Collector transport announces in its HELLO.
inline constexpr const char* kCollectorParty = "collector";

struct PublisherOptions {
  int interval_ms = 200;            // snapshot cadence
  int reconnect_backoff_ms = 100;   // doubled per failed dial…
  int reconnect_backoff_max_ms = 2000;  // …up to this cap
  net::TcpOptions tcp;  // per-dial socket options (attempts forced to 1)
};

// Pushes this process's snapshots to a Collector from a background thread.
// Never blocks training: snapshots read atomics and registry counters
// only. Connection loss triggers a re-dial with exponential backoff; the
// snapshot seq keeps counting across reconnects.
class SnapshotPublisher {
 public:
  SnapshotPublisher(std::string party, std::string host, std::uint16_t port,
                    PublisherOptions options = {});
  ~SnapshotPublisher();

  SnapshotPublisher(const SnapshotPublisher&) = delete;
  SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

  // Optional: live training status to sample (must outlive the publisher).
  void set_status(const LiveStatus* status) { status_ = status; }

  void start();
  // Pushes one final snapshot (so the Collector sees the end state) and
  // joins the thread. Idempotent; also called by the destructor.
  void stop();

  std::uint64_t published() const { return published_.load(); }
  std::uint64_t send_failures() const { return send_failures_.load(); }
  // Clock offset measured against the Collector on the latest dial.
  net::ClockSync clock_sync() const;

 private:
  void run();
  bool ensure_connected();
  bool publish_once(std::uint64_t seq);

  const std::string party_;
  const std::string host_;
  const std::uint16_t port_;
  const PublisherOptions options_;
  const std::string link_;
  const LiveStatus* status_ = nullptr;

  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  mutable std::mutex mu_;  // guards transport_ swaps vs clock_sync()
  std::unique_ptr<net::TcpTransport> transport_;
  bool connected_ = false;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::thread thread_;
};

// Everything the Collector knows about one party. `stale`/`age_ms` are
// computed at query time against CollectorOptions::stale_after_ms.
struct PartyView {
  Snapshot latest;
  std::uint64_t snapshots = 0;   // frames ingested
  std::uint64_t reconnects = 0;  // transport generations beyond the first
  bool have_clock = false;
  double clock_offset_us = 0;  // party_clock - collector_clock
  double clock_rtt_us = 0;     // min-RTT bound on the offset error
  std::uint64_t last_seen_us = 0;  // collector clock at last ingest
  double age_ms = 0;
  bool stale = false;
  // (round, d_loss, g_loss) per round, newest last, bounded ring.
  std::vector<std::array<double, 3>> loss_history;
};

struct CollectorOptions {
  int stale_after_ms = 2000;  // silent longer than this -> stale
  int poll_interval_ms = 10;  // ingest sweep cadence when idle
  std::size_t history = 160;  // loss-history ring length per party
};

// Driver-side aggregation point. listen() starts the telemetry socket,
// serve_http() the scrape endpoint; both are optional and independent so
// tests can ingest() synthetic snapshots without any socket.
class Collector {
 public:
  explicit Collector(CollectorOptions options = {});
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  // Binds the snapshot ingest socket on 127.0.0.1:`port` (0 = ephemeral)
  // and starts the ingest thread. Returns the bound port.
  std::uint16_t listen(std::uint16_t port);

  // Minimal HTTP/1.0 endpoint: GET /metrics (Prometheus text aggregated
  // across parties with party labels), GET /status (JSON for gtv-top),
  // GET /healthz. Returns the bound port.
  std::uint16_t serve_http(std::uint16_t port);

  void stop();

  // Folds one snapshot into the party views. The socket ingest path goes
  // through here; tests can call it directly.
  void ingest(Snapshot snap);

  std::vector<PartyView> parties() const;
  std::size_t party_count() const;

  // Blocks until at least `min_parties` parties have each reported at
  // least `min_snapshots` frames, or `timeout_ms` elapses.
  bool wait_for_snapshots(std::size_t min_parties, std::uint64_t min_snapshots,
                          int timeout_ms) const;

  // JSON document for gtv-top: collector info + one entry per party.
  std::string status_json() const;

  // Aggregated Prometheus exposition: every party's dump re-labeled with
  // party="<name>", plus the collector's own gtv_agg_* series.
  std::string prometheus() const;

  // Offsets file for gtv-prof --offsets: party -> {offset_us, rtt_us}
  // relative to this collector's clock.
  std::string offsets_json() const;

  // Ingest latency (send->ingest, clock-aligned) distribution, ms.
  double latency_ms(double percentile) const;

 private:
  void ingest_loop();
  void http_loop();
  void handle_http_client(int fd);
  void fill_derived_locked(PartyView& view, std::uint64_t now_us) const;

  const CollectorOptions options_;
  std::atomic<bool> stopping_{false};

  std::unique_ptr<net::TcpTransport> transport_;
  std::thread ingest_thread_;

  int http_fd_ = -1;
  std::thread http_thread_;

  mutable std::mutex mu_;
  mutable std::condition_variable views_cv_;
  std::map<std::string, PartyView> views_;  // by party name
  Histogram latency_;                       // snapshot send->ingest, ms
  std::uint64_t bad_frames_ = 0;
  std::uint64_t started_us_ = 0;
};

// Injects party="<party>" as the first label of one Prometheus sample
// line (creating the label set if absent). Label values are escaped per
// the exposition format (backslash, quote, newline).
std::string inject_party_label(const std::string& line, const std::string& party);

// Merges per-party exposition dumps: samples gain party labels, families
// keep a single # TYPE header (first party's wins), family order follows
// first appearance.
std::string aggregate_prometheus(
    const std::vector<std::pair<std::string, std::string>>& per_party);

}  // namespace gtv::obs::agg
