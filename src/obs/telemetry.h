// gtv::obs — per-round telemetry for the GTV training loop.
//
// One RoundTelemetry record is captured by GtvTrainer::train_round() per
// round: where the wall-clock time went inside the split-training pipeline
// (the paper's §3.1 phases), the round's loss components, and the byte /
// message deltas charged to every TrafficMeter link during the round. The
// per-link deltas are exact: summed over a run they reproduce
// TrafficMeter::total().
//
// The struct is plain data so it can be serialized (`to_json`), aggregated
// (`aggregate`), and shipped by benchmarks without dragging in the core
// types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/health.h"

namespace gtv::obs {

struct LinkDelta {
  std::string link;
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

struct RoundTelemetry {
  std::size_t round = 0;  // 0-based round index (aggregate: number of rounds)

  // --- phase durations (wall-clock milliseconds) -----------------------------
  // Accumulated over the round's d_steps_per_round critic steps; the
  // gradient-penalty time is a sub-span of critic_backward_ms.
  double total_ms = 0;
  double cv_generation_ms = 0;
  double fake_forward_ms = 0;
  double real_forward_ms = 0;
  double critic_backward_ms = 0;
  double gradient_penalty_ms = 0;
  double generator_step_ms = 0;
  double shuffle_ms = 0;

  // --- loss components (mirrors gan::RoundLosses) ----------------------------
  float d_loss = 0;
  float g_loss = 0;
  float gp = 0;
  float wasserstein = 0;

  // --- tensor-memory high-water marks (bytes) --------------------------------
  // Peak live tensor bytes observed while each phase ran (MemPeakScope);
  // 0 when memory accounting attribution was not captured. `total` covers
  // the whole round. aggregate() takes the max, not the sum.
  struct PhasePeaks {
    std::uint64_t total = 0;
    std::uint64_t cv_generation = 0;
    std::uint64_t fake_forward = 0;
    std::uint64_t real_forward = 0;
    std::uint64_t critic_backward = 0;
    std::uint64_t gradient_penalty = 0;
    std::uint64_t generator_step = 0;
    std::uint64_t shuffle = 0;
  };
  PhasePeaks mem_peak_bytes;

  // --- training health (gtv::obs::health) ------------------------------------
  // Populated only under GTV_HEALTH: per-module gradient stats, probe
  // results, and the alerts that fired this round. When not collected the
  // JSON omits the block, keeping disarmed output byte-identical.
  // aggregate() does not fold health (per-round records stay the source of
  // truth; the run-level summary lives in HealthLog).
  RoundHealth health;

  // --- communication charged during this round -------------------------------
  std::vector<LinkDelta> links;

  std::uint64_t bytes_sent() const;
  std::uint64_t messages_sent() const;

  // One JSON object (single line, no trailing newline).
  std::string to_json() const;
};

// Element-wise sum of phases/losses/links over a run; `round` becomes the
// number of rounds aggregated and losses are averaged.
RoundTelemetry aggregate(const std::vector<RoundTelemetry>& rounds);

// JSON array of RoundTelemetry::to_json records.
std::string telemetry_to_json(const std::vector<RoundTelemetry>& rounds);

}  // namespace gtv::obs
