#include "obs/memory.h"

#include <atomic>

#include "obs/metrics.h"

namespace gtv::obs {

namespace {

// Active MemPeakScope watermarks. Scopes claim slots stack-wise; every
// allocation CAS-maxes the new live value into all active slots. Depth is
// bounded so the allocation path stays a fixed handful of relaxed atomics.
constexpr int kMaxScopeDepth = 16;

struct Ledger {
  std::atomic<std::uint64_t> live{0};
  std::atomic<std::uint64_t> peak{0};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<int> scope_depth{0};
  std::atomic<std::uint64_t> scope_peak[kMaxScopeDepth] = {};
};

// Constant-initialized (all atomics are zero-init), so accounting is safe
// from any point of static initialization onward.
Ledger g_ledger;

void cas_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void account_alloc(std::size_t bytes) noexcept {
  g_ledger.allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t live =
      g_ledger.live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  cas_max(g_ledger.peak, live);
  const int depth = g_ledger.scope_depth.load(std::memory_order_relaxed);
  for (int i = 0; i < depth && i < kMaxScopeDepth; ++i) {
    cas_max(g_ledger.scope_peak[i], live);
  }
}

void account_free(std::size_t bytes) noexcept {
  g_ledger.frees.fetch_add(1, std::memory_order_relaxed);
  g_ledger.live.fetch_sub(bytes, std::memory_order_relaxed);
}

MemStats memory_stats() {
  return {g_ledger.live.load(std::memory_order_relaxed),
          g_ledger.peak.load(std::memory_order_relaxed),
          g_ledger.allocs.load(std::memory_order_relaxed),
          g_ledger.frees.load(std::memory_order_relaxed)};
}

void reset_memory_peak() {
  g_ledger.peak.store(g_ledger.live.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

void publish_memory_gauges() {
  struct Gauges {
    Gauge& live = MetricsRegistry::instance().gauge("tensor.mem.live_bytes");
    Gauge& peak = MetricsRegistry::instance().gauge("tensor.mem.peak_bytes");
    Gauge& allocs = MetricsRegistry::instance().gauge("tensor.mem.alloc_count");
    Gauge& frees = MetricsRegistry::instance().gauge("tensor.mem.free_count");
  };
  static Gauges gauges;
  const MemStats stats = memory_stats();
  gauges.live.set(static_cast<double>(stats.live_bytes));
  gauges.peak.set(static_cast<double>(stats.peak_bytes));
  gauges.allocs.set(static_cast<double>(stats.alloc_count));
  gauges.frees.set(static_cast<double>(stats.free_count));
}

MemPeakScope::MemPeakScope(std::uint64_t* out_peak) : out_(out_peak) {
  slot_ = g_ledger.scope_depth.fetch_add(1, std::memory_order_relaxed);
  if (slot_ < kMaxScopeDepth) {
    g_ledger.scope_peak[slot_].store(g_ledger.live.load(std::memory_order_relaxed),
                                     std::memory_order_relaxed);
  }
}

std::uint64_t MemPeakScope::peak_bytes() const {
  if (slot_ >= kMaxScopeDepth) return g_ledger.live.load(std::memory_order_relaxed);
  return g_ledger.scope_peak[slot_].load(std::memory_order_relaxed);
}

MemPeakScope::~MemPeakScope() {
  const std::uint64_t peak = peak_bytes();
  g_ledger.scope_depth.fetch_sub(1, std::memory_order_relaxed);
  if (out_ != nullptr && peak > *out_) *out_ = peak;
}

}  // namespace gtv::obs
