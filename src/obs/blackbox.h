// gtv::obs::bb — per-party crash-safe flight recorder ("black box").
//
// Every other observability surface in this repo (traces, telemetry JSON,
// /metrics, health logs) buffers in process memory until a clean flush, so
// a SIGKILL'd or deadlocked party leaves nothing behind. The black box is
// the opposite contract: a fixed-size ring of CRC32-framed records inside
// an mmap(MAP_SHARED) file, written lock-free from the hot path. A store
// into the mapping lands in the kernel page cache immediately, so the file
// holds every completed record *at all times* — no flush, no buffering,
// nothing lost when the process dies mid-round (short of the whole machine
// going down before writeback).
//
// File layout (all integers little-endian):
//
//   offset  size  field
//        0     8  file magic  "GTVBBOX1"
//        8     4  format version (kRingFormatVersion)
//       12     4  header size (= kRingHeaderBytes; ring region starts here)
//       16     8  ring capacity in bytes
//       24     8  write cursor   — logical, monotonically increasing; the
//                  physical write offset is cursor % capacity. Atomic.
//       32     8  records written (atomic)
//       40     8  records dropped (payload over kMaxRecordPayload) (atomic)
//       48  ...   reserved (zero)
//     4096  cap   ring bytes
//
// Record frame inside the ring (8-byte aligned, 32-byte header):
//
//   offset  size  field
//        0     4  record magic 0x42425447 ("GTBB")
//        4     2  type (RecordType)
//        6     2  reserved (zero)
//        8     4  payload length
//       12     4  CRC-32 (IEEE) over bytes [4,32) + payload
//       16     8  seq    — process-wide, monotonically increasing
//       24     8  t_us   — TraceSink::now_us() (trace clock; clock-sync
//                  offsets from gtv-node --offsets-out apply directly)
//       32   ...   payload, zero-padded to the next 8-byte boundary
//
// Crash-safety argument: a writer reserves its region with one CAS on the
// mapped write cursor, fills payload + header fields, and publishes the
// record magic last. A process that dies mid-write leaves at most one
// frame whose CRC cannot validate; every earlier record is already bytes
// in the shared mapping. Readers scan the ring at 8-byte offsets, accept
// only frames whose magic, length and CRC check out, and order them by
// seq — stale bytes from a previous lap fail the CRC and are skipped.
// Writers lapping a slow concurrent writer can, in pathological cases,
// overwrite a frame being read back later; the CRC turns that into a
// skipped frame, never a bogus record.
//
// Everything on the append path — reserve, byte stores, the CRC loop,
// clock_gettime — is async-signal-safe, so the fatal-signal handlers
// (SIGSEGV/SIGABRT/SIGBUS/SIGFPE) append a final crash record (signal,
// faulting address, raw backtrace PCs) and msync before re-raising. A
// StallWatchdog thread watches round/phase progress and, past a threshold,
// records a stall and asks every thread in the process (via a dump signal
// + /proc/self/task) to append its own backtrace.
//
// The offline half — read_ring / validate / per-record decode — is used by
// tools/gtv-postmortem and the tests; it allocates freely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gtv::obs::bb {

inline constexpr std::uint64_t kFileMagic = 0x31584F4242565447ULL;  // "GTVBBOX1"
inline constexpr std::uint32_t kRingFormatVersion = 1;
inline constexpr std::size_t kRingHeaderBytes = 4096;
inline constexpr std::uint32_t kRecordMagic = 0x42425447u;  // "GTBB"
inline constexpr std::size_t kRecordHeaderBytes = 32;
// Payload cap: keeps any single reservation (and the tail wasted on a ring
// wrap) small, and bounds the stack buffers used in signal context.
inline constexpr std::size_t kMaxRecordPayload = 3968;  // header + payload <= 4000
inline constexpr std::size_t kMinRingCapacity = 1 << 14;    // 16 KiB
inline constexpr std::size_t kDefaultRingCapacity = 1 << 20;  // 1 MiB

enum class RecordType : std::uint16_t {
  kRunHeader = 1,    // once, at open: who this party is + run identity
  kPhase = 2,        // round/phase transition
  kLoss = 3,         // per-round losses
  kAlert = 4,        // health alert (severity, rule)
  kNetEvent = 5,     // transport event (retry/timeout/corrupt/connect/...)
  kStall = 6,        // watchdog: no progress past threshold
  kThreadStack = 7,  // one thread's backtrace PCs (stall dump)
  kCrash = 8,        // fatal signal: signo, fault addr, backtrace PCs
  kShutdown = 9,     // orderly exit (code + reason), incl. signal-triggered
};
const char* to_string(RecordType type);

// Transport event kinds (NetEventRecord::kind).
enum class NetEvent : std::uint32_t {
  kRetry = 0,
  kTimeout = 1,
  kCorruptFrame = 2,
  kConnect = 3,     // dial completed (incl. reconnect dials)
  kAccept = 4,      // inbound connection accepted
  kDisconnect = 5,  // connection marked dead
};
const char* to_string(NetEvent kind);

// --- typed payloads ---------------------------------------------------------------
// encode() fills a caller-supplied buffer (async-signal-safe, no
// allocation) and returns the encoded length, or 0 if it does not fit.
// decode() parses a reader-side payload; throws std::runtime_error on
// malformed bytes.

struct RunHeaderRecord {
  std::string party;
  std::uint64_t n_clients = 0;
  std::uint64_t rounds = 0;
  std::uint64_t seed = 0;
  std::uint64_t wall_us = 0;  // CLOCK_REALTIME at open — cross-party
                              // alignment fallback when no offsets file
  std::uint64_t pid = 0;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static RunHeaderRecord decode(const std::uint8_t* p, std::size_t len);
};

struct PhaseRecord {
  std::uint64_t round = 0;
  std::uint32_t phase = 0;  // obs::agg::Phase enum value

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static PhaseRecord decode(const std::uint8_t* p, std::size_t len);
};

struct LossRecord {
  std::uint64_t round = 0;
  float d_loss = 0, g_loss = 0, gp = 0, wasserstein = 0;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static LossRecord decode(const std::uint8_t* p, std::size_t len);
};

struct AlertRecord {
  std::uint32_t severity = 0;  // obs::Severity enum value
  std::uint64_t round = 0;
  std::string rule;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static AlertRecord decode(const std::uint8_t* p, std::size_t len);
};

struct NetEventRecord {
  NetEvent kind = NetEvent::kRetry;
  std::string link;  // link or peer name

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static NetEventRecord decode(const std::uint8_t* p, std::size_t len);
};

struct StallRecord {
  std::uint64_t stalled_ms = 0;
  std::uint64_t round = 0;
  std::uint32_t phase = 0;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static StallRecord decode(const std::uint8_t* p, std::size_t len);
};

struct ThreadStackRecord {
  std::uint64_t tid = 0;
  std::vector<std::uint64_t> pcs;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static ThreadStackRecord decode(const std::uint8_t* p, std::size_t len);
};

struct CrashRecord {
  std::uint32_t signal = 0;
  std::uint64_t fault_addr = 0;
  std::vector<std::uint64_t> pcs;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static CrashRecord decode(const std::uint8_t* p, std::size_t len);
};

struct ShutdownRecord {
  std::uint32_t code = 0;
  std::string reason;

  std::size_t encode(std::uint8_t* buf, std::size_t cap) const;
  static ShutdownRecord decode(const std::uint8_t* p, std::size_t len);
};

// --- the recorder -----------------------------------------------------------------

struct BlackBoxOptions {
  std::size_t capacity_bytes = kDefaultRingCapacity;  // ring region size
};

class BlackBox {
 public:
  using Options = BlackBoxOptions;

  // Creates/truncates `path`, maps it, writes the run header record.
  // Throws std::runtime_error when the file cannot be created or mapped.
  BlackBox(const std::string& path, const RunHeaderRecord& header,
           Options options = {});
  // Unmaps after an msync. Does NOT write a shutdown record — callers
  // decide what the last word is (note_shutdown).
  ~BlackBox();

  BlackBox(const BlackBox&) = delete;
  BlackBox& operator=(const BlackBox&) = delete;

  // Appends one record. Lock-free and async-signal-safe: one CAS to
  // reserve, plain stores, no allocation, no locks. Payloads over
  // kMaxRecordPayload are counted as dropped and skipped.
  void append(RecordType type, const std::uint8_t* payload, std::size_t len);

  // msync(MS_ASYNC) of the whole mapping — schedules writeback without
  // blocking. Async-signal-safe. (Records are in the page cache already;
  // this only accelerates durability against machine-level failure.)
  void sync() const;

  const std::string& path() const { return path_; }
  std::uint64_t records_written() const;
  std::uint64_t records_dropped() const;
  // Seq the next append will use; doubles as a progress counter for the
  // stall watchdog.
  std::uint64_t next_seq() const { return seq_.load(std::memory_order_relaxed); }

  // --- process-wide instance ------------------------------------------------------
  // The global recorder the note_* helpers and signal handlers write to.
  // open_global replaces any previous instance (the old one leaks: a
  // handler racing the swap must never touch a destroyed mapping).
  static BlackBox* open_global(const std::string& path,
                               const RunHeaderRecord& header, Options options = {});
  static BlackBox* get();

 private:
  std::uint8_t* reserve(std::size_t total_bytes);

  std::string path_;
  std::size_t capacity_ = 0;
  std::uint8_t* map_ = nullptr;   // whole file mapping
  std::size_t map_len_ = 0;
  std::uint8_t* ring_ = nullptr;  // map_ + kRingHeaderBytes
  // Mapped-header fields (live inside the file):
  std::atomic<std::uint64_t>* cursor_ = nullptr;
  std::atomic<std::uint64_t>* written_ = nullptr;
  std::atomic<std::uint64_t>* dropped_ = nullptr;
  std::atomic<std::uint64_t> seq_{0};
};

// --- hot-path emission helpers ----------------------------------------------------
// All no-ops (single relaxed load) until open_global() has run. Safe to
// call from any thread; note_crash/note_thread_stack also from signal
// handlers.
void note_phase(std::uint64_t round, std::uint32_t phase);
void note_loss(std::uint64_t round, float d, float g, float gp, float w);
void note_alert(std::uint32_t severity, std::uint64_t round, const char* rule);
void note_net_event(NetEvent kind, const char* link);
void note_shutdown(std::uint32_t code, const char* reason);

// --- fatal-signal handlers --------------------------------------------------------
// Installs handlers for SIGSEGV/SIGABRT/SIGBUS/SIGFPE that append a
// CrashRecord (+ msync) to the global black box and re-raise with the
// default disposition, and the stack-dump handler the watchdog uses.
// Pre-warms glibc backtrace() so the crash path never allocates.
// Idempotent.
void install_crash_handlers();

// --- stall watchdog ---------------------------------------------------------------
// Polls a progress tuple — the global black box's seq plus optional
// round/phase atomics (e.g. obs::agg::LiveStatus fields) — and when it
// sees no change for stall_ms, appends a StallRecord and (dump_stacks)
// signals every thread listed in /proc/self/task to append its backtrace.
// One dump per stall episode; re-arms when progress resumes.
struct StallWatchdogOptions {
  int stall_ms = 30000;
  int poll_ms = 200;
  bool dump_stacks = true;
};

class StallWatchdog {
 public:
  using Options = StallWatchdogOptions;

  StallWatchdog(const std::atomic<std::uint64_t>* round,
                const std::atomic<std::uint32_t>* phase, Options options = {});
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  void start();
  void stop();
  std::uint64_t stalls_detected() const { return stalls_.load(); }

 private:
  void run();

  const std::atomic<std::uint64_t>* round_;
  const std::atomic<std::uint32_t>* phase_;
  Options options_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> stalls_{0};
  bool started_ = false;
  // Thread handle lives behind a pimpl-free std::thread; declared last so
  // run() sees fully-initialized state.
  struct ThreadBox;
  ThreadBox* thread_ = nullptr;
};

// --- offline reader ---------------------------------------------------------------

struct Record {
  RecordType type = RecordType::kRunHeader;
  std::uint64_t seq = 0;
  std::uint64_t t_us = 0;
  std::vector<std::uint8_t> payload;
};

struct RingInfo {
  std::size_t capacity = 0;
  std::uint64_t cursor = 0;
  std::uint64_t records_written = 0;
  std::uint64_t records_dropped = 0;
};

struct ReadResult {
  RingInfo info;
  std::vector<Record> records;     // sorted by seq
  std::uint64_t crc_rejects = 0;   // magic hits whose CRC failed (stale laps)
  bool has_run_header = false;
  RunHeaderRecord run_header;      // valid when has_run_header
};

// Reads and parses one ring file. Throws std::runtime_error on a missing
// file or malformed file header. Safe on a live ring (snapshot semantics:
// whatever frames validate at read time).
ReadResult read_ring(const std::string& path);

// Structural validation: every retained seq unique and strictly
// increasing, seqs contiguous over the retained window, record payloads
// decodable, a run header present. Returns human-readable problems
// (empty = valid).
std::vector<std::string> validate(const ReadResult& ring);

}  // namespace gtv::obs::bb
