#include "obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtv::obs {

namespace {

// -1 = uninitialised, 0 = off, 1 = on (same lazy-env pattern as GTV_METRICS).
std::atomic<int> g_profile_state{-1};

int profile_state_from_env() {
  const char* v = std::getenv("GTV_PROFILE");
  if (v == nullptr || v[0] == '\0' || std::string(v) == "0") return 0;
  return 1;
}

// Per-thread scope stack state: time spent in completed child scopes of the
// innermost open scope, bytes charged to it, and whether one is open at all.
thread_local std::uint64_t t_child_us = 0;
thread_local std::uint64_t t_scope_bytes = 0;
thread_local int t_scope_depth = 0;

std::string op_key(const char* name, const char* suffix) {
  std::string key(name);
  if (suffix != nullptr) key += suffix;
  return key;
}

}  // namespace

bool profiling_enabled() {
  int state = g_profile_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = profile_state_from_env();
    g_profile_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_profiling_enabled(bool enabled) {
  g_profile_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const char* name, const char* suffix, std::uint64_t total_us,
                      std::uint64_t self_us, std::uint64_t bytes) {
  const std::string key = op_key(name, suffix);
  std::lock_guard<std::mutex> lock(mu_);
  OpStats& s = stats_[key];
  s.calls += 1;
  s.total_us += total_us;
  s.self_us += self_us;
  s.bytes += bytes;
}

std::map<std::string, OpStats> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string Profiler::report() const {
  const auto stats = snapshot();
  std::vector<std::pair<std::string, OpStats>> rows(stats.begin(), stats.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_us > b.second.self_us;
  });
  OpStats total;
  for (const auto& [name, s] : rows) {
    total.calls += s.calls;
    total.total_us += s.total_us;
    total.self_us += s.self_us;
    total.bytes += s.bytes;
  }
  std::ostringstream os;
  char line[192];
  std::snprintf(line, sizeof(line), "%-28s %10s %12s %12s %7s %10s\n", "op", "calls",
                "total_ms", "self_ms", "self%", "MB");
  os << line;
  const double self_total = std::max<double>(1, static_cast<double>(total.self_us));
  for (const auto& [name, s] : rows) {
    std::snprintf(line, sizeof(line), "%-28s %10llu %12.3f %12.3f %6.1f%% %10.2f\n",
                  name.c_str(), static_cast<unsigned long long>(s.calls),
                  static_cast<double>(s.total_us) / 1e3,
                  static_cast<double>(s.self_us) / 1e3,
                  100.0 * static_cast<double>(s.self_us) / self_total,
                  static_cast<double>(s.bytes) / (1024.0 * 1024.0));
    os << line;
  }
  std::snprintf(line, sizeof(line), "%-28s %10llu %12s %12.3f %6.1f%% %10.2f\n", "TOTAL",
                static_cast<unsigned long long>(total.calls), "-",
                static_cast<double>(total.self_us) / 1e3, 100.0,
                static_cast<double>(total.bytes) / (1024.0 * 1024.0));
  os << line;
  return os.str();
}

std::string Profiler::to_json() const {
  const auto stats = snapshot();
  std::ostringstream os;
  os << "{\"schema_version\":1,\"ops\":{";
  bool first = true;
  for (const auto& [name, s] : stats) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":{"
       << "\"calls\":" << s.calls << ",\"total_us\":" << s.total_us
       << ",\"self_us\":" << s.self_us << ",\"bytes\":" << s.bytes << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
}

OpScope::OpScope(const char* name, const char* suffix)
    : name_(name), suffix_(suffix), active_(profiling_enabled()) {
  if (!active_) return;
  saved_child_us_ = t_child_us;
  saved_bytes_ = t_scope_bytes;
  t_child_us = 0;
  t_scope_bytes = 0;
  ++t_scope_depth;
  start_us_ = TraceSink::now_us();
}

OpScope::~OpScope() {
  if (!active_) return;
  const std::uint64_t total_us = TraceSink::now_us() - start_us_;
  const std::uint64_t child_us = std::min(t_child_us, total_us);
  Profiler::instance().record(name_, suffix_, total_us, total_us - child_us,
                              t_scope_bytes);
  --t_scope_depth;
  // This scope's full duration counts as child time of the enclosing scope.
  t_child_us = saved_child_us_ + total_us;
  t_scope_bytes = saved_bytes_;
}

void OpScope::charge_bytes(std::uint64_t bytes) {
  if (t_scope_depth > 0) t_scope_bytes += bytes;
}

}  // namespace gtv::obs
