#include "obs/sampler.h"

#include <dirent.h>
#include <dlfcn.h>
#include <elf.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cxxabi.h>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>
#include <unordered_map>

#include "obs/thread_name.h"

#if defined(__GLIBC__) && __has_include(<execinfo.h>)
#include <execinfo.h>
#define GTV_HAVE_BACKTRACE 1
#endif

namespace gtv::obs::sampler {

namespace {

// SIGUSR1 belongs to the blackbox stack dumper; the wall sweep takes SIGUSR2.
constexpr int kCpuSampleSignal = SIGPROF;
constexpr int kWallSampleSignal = SIGUSR2;

// --- static ring pool (BSS; the signal path never allocates) ----------------------

struct Slot {
  std::uint64_t round;
  std::uint32_t phase;
  std::uint16_t n_pcs;
  std::uint8_t on_cpu;
  void* pcs[kMaxSampleFrames];
};

// SPSC: the owning thread's signal handlers are the only writer (nesting is
// excluded by sa_mask blocking both sample signals), the aggregator is the
// only reader. head/tail are free-running u32 counters.
struct ThreadRing {
  std::atomic<std::uint32_t> head{0};
  std::atomic<std::uint32_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t tid = 0;
  char name[17] = {0};
  Slot slots[kRingSlots];
};

ThreadRing g_rings[kMaxThreads];
std::atomic<int> g_ring_count{0};
std::atomic<std::uint64_t> g_pool_exhausted{0};

// -1 = unclaimed, -2 = pool exhausted for this thread. initial-exec TLS in a
// statically linked TU — safe to touch from a signal handler (no lazy
// __tls_get_addr allocation path).
thread_local int tl_ring = -1;

// Wall-sweep baselines. Epoch bump on re-arm invalidates stale baselines so a
// restart cannot misread the idle gap as blocked time.
constexpr std::uint64_t kNoBaseline = ~std::uint64_t{0};
thread_local std::uint64_t tl_last_cpu_us = kNoBaseline;
thread_local std::uint64_t tl_last_wall_us = 0;
thread_local std::uint32_t tl_wall_epoch = 0;
// The sweep's last verdict for this thread. The CPU handler consults it so a
// process-directed SIGPROF that the kernel hands to a blocked thread (its
// sweep handler briefly put it on CPU, or delivery rotation just picked it)
// is not charged to that thread's parked stack.
thread_local bool tl_parked = false;

std::atomic<bool> g_armed{false};
std::atomic<std::uint32_t> g_epoch{1};
std::atomic<const std::atomic<std::uint64_t>*> g_round{nullptr};
std::atomic<const std::atomic<std::uint32_t>*> g_phase{nullptr};

inline std::uint64_t thread_cpu_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

inline std::uint64_t mono_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;
}

int capture_backtrace(void** frames, int max) {
#if defined(GTV_HAVE_BACKTRACE)
  return ::backtrace(frames, max);
#else
  (void)frames;
  (void)max;
  return 0;
#endif
}

// The PC the signal interrupted, straight from the kernel-saved context.
// Used to trim the handler's own frames off the captured backtrace.
void* interrupted_pc(void* ctx) {
#if defined(__x86_64__)
  if (ctx != nullptr) {
    return reinterpret_cast<void*>(
        static_cast<ucontext_t*>(ctx)->uc_mcontext.gregs[REG_RIP]);
  }
#elif defined(__aarch64__)
  if (ctx != nullptr) {
    return reinterpret_cast<void*>(static_cast<ucontext_t*>(ctx)->uc_mcontext.pc);
  }
#else
  (void)ctx;
#endif
  return nullptr;
}

// Async-signal-safe sample capture: claim a ring on first use, backtrace into
// the next slot, publish with a release store of head.
void record_sample(bool on_cpu, void* ctx) {
  int idx = tl_ring;
  if (idx == -1) {
    const int claimed = g_ring_count.fetch_add(1, std::memory_order_relaxed);
    if (claimed >= static_cast<int>(kMaxThreads)) {
      tl_ring = -2;
      g_pool_exhausted.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ThreadRing& ring = g_rings[claimed];
    ring.tid = static_cast<std::uint64_t>(::syscall(SYS_gettid));
    // prctl(PR_GET_NAME) is a plain syscall — safe here, unlike
    // pthread_getname_np's /proc read on some libcs.
    if (::prctl(PR_GET_NAME, ring.name, 0, 0, 0) != 0) ring.name[0] = '\0';
    ring.name[16] = '\0';
    tl_ring = claimed;
    idx = claimed;
  }
  if (idx < 0) {
    g_pool_exhausted.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ThreadRing& ring = g_rings[idx];
  const std::uint32_t head = ring.head.load(std::memory_order_relaxed);
  const std::uint32_t tail = ring.tail.load(std::memory_order_acquire);
  if (head - tail >= kRingSlots) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = ring.slots[head % kRingSlots];

  void* frames[kMaxSampleFrames + 8];
  const int n = capture_backtrace(frames, kMaxSampleFrames + 8);
  // Drop our own handler frames: everything above the interrupted PC.
  int start = 0;
  void* hit = interrupted_pc(ctx);
  if (hit != nullptr) {
    for (int i = 0; i < n && i < 8; ++i) {
      if (frames[i] == hit) {
        start = i;
        break;
      }
    }
  }
  int kept = n - start;
  if (kept < 0) kept = 0;
  if (kept > kMaxSampleFrames) kept = kMaxSampleFrames;
  for (int i = 0; i < kept; ++i) slot.pcs[i] = frames[start + i];

  const std::atomic<std::uint64_t>* round = g_round.load(std::memory_order_relaxed);
  const std::atomic<std::uint32_t>* phase = g_phase.load(std::memory_order_relaxed);
  slot.round = round != nullptr ? round->load(std::memory_order_relaxed) : 0;
  slot.phase = phase != nullptr ? phase->load(std::memory_order_relaxed) : 0;
  slot.n_pcs = static_cast<std::uint16_t>(kept);
  slot.on_cpu = on_cpu ? 1 : 0;
  ring.head.store(head + 1, std::memory_order_release);
}

void cpu_sample_handler(int, siginfo_t*, void* ctx) {
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_relaxed)) {
    // The process-CPU timer signal is process-directed: the kernel usually
    // picks the thread that advanced the clock, but its delivery rotation
    // can also wake a thread parked in read()/poll(), which would charge
    // another thread's CPU tick to a blocked stack. Reuse the wall sweep's
    // baselines to drop ticks landing on threads whose own CPU clock is not
    // moving (no baseline yet: treat a thread with <1ms of lifetime CPU as
    // parked — a genuinely busy thread crosses that within a millisecond).
    const std::uint64_t cpu = thread_cpu_us();
    bool parked;
    if (tl_last_cpu_us == kNoBaseline ||
        tl_wall_epoch != g_epoch.load(std::memory_order_relaxed)) {
      // No sweep baseline yet: a thread with under 1 ms of lifetime CPU has
      // never really run — a genuinely busy thread crosses that instantly.
      parked = cpu < 1000;
    } else {
      // Trust the sweep's verdict until the thread proves it woke up by
      // burning a full millisecond past the baseline. The sweep handler
      // itself costs only tens of microseconds, so a parked thread never
      // crosses this threshold, while a thread that resumed real work does
      // within one tick.
      parked = tl_parked && cpu - tl_last_cpu_us < 1000;
    }
    if (!parked) record_sample(true, ctx);
  }
  errno = saved_errno;
}

// Wall-sweep handler: decide blocked vs running from this thread's own CPU
// clock advance since the previous sweep tick. A busy thread advances its
// CPU clock at ~wall rate and is skipped (SIGPROF covers it); a thread parked
// in read()/poll()/pthread_cond_wait advances ~0 and gets an off-CPU sample
// whose backtrace points into the blocking call.
void wall_sample_handler(int, siginfo_t*, void* ctx) {
  const int saved_errno = errno;
  if (g_armed.load(std::memory_order_relaxed)) {
    const std::uint64_t cpu = thread_cpu_us();
    const std::uint64_t wall = mono_us();
    const std::uint32_t epoch = g_epoch.load(std::memory_order_relaxed);
    const bool fresh = tl_last_cpu_us == kNoBaseline || tl_wall_epoch != epoch;
    const std::uint64_t cpu_delta = cpu - tl_last_cpu_us;
    const std::uint64_t wall_delta = wall - tl_last_wall_us;
    tl_last_cpu_us = cpu;
    tl_last_wall_us = wall;
    tl_wall_epoch = epoch;
    if (fresh) {
      tl_parked = cpu < 1000;  // lifetime-CPU guess until a real window exists
    } else if (wall_delta >= 1000) {
      tl_parked = cpu_delta * 2 < wall_delta;
    }
    // >=1ms of wall elapsed and under half of it on CPU -> blocked.
    if (!fresh && wall_delta >= 1000 && cpu_delta * 2 < wall_delta) {
      record_sample(false, ctx);
    }
  }
  errno = saved_errno;
}

void install_sample_handlers() {
  static std::atomic<bool> installed{false};
  bool expected = false;
  if (!installed.compare_exchange_strong(expected, true)) return;
  struct sigaction sa{};
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  // Block both sample signals while either handler runs: a nested writer
  // would break the ring's single-producer invariant.
  sigemptyset(&sa.sa_mask);
  sigaddset(&sa.sa_mask, kCpuSampleSignal);
  sigaddset(&sa.sa_mask, kWallSampleSignal);
  sa.sa_sigaction = cpu_sample_handler;
  ::sigaction(kCpuSampleSignal, &sa, nullptr);
  sa.sa_sigaction = wall_sample_handler;
  ::sigaction(kWallSampleSignal, &sa, nullptr);
}

// --- symbolization (ordinary context only) ----------------------------------------

void sanitize_frame(std::string& name) {
  for (char& c : name) {
    if (c == ';') c = ':';
  }
  name.erase(std::remove(name.begin(), name.end(), ' '), name.end());
  if (name.empty()) name.assign(1, '?');
}

void strip_arguments(std::string& name) {
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (name[i] != '(') continue;
    if (i >= 8 && name.compare(i - 8, 8, "operator") == 0) continue;  // operator()
    // "(anonymous namespace)::f" — this '(' opens a scope, not an arg list.
    if (name.compare(i + 1, 9, "anonymous") == 0) continue;
    name.resize(i);
    break;
  }
}

// --- ELF .symtab fallback ---------------------------------------------------------
// dladdr consults only .dynsym, so static functions and lambda bodies (local
// symbols) come back nameless even though the unstripped binary knows them.
// Parse the module's full .symtab once and binary-search it for those pcs.
// This runs only on the report path (aggregator drain / folded()), never in a
// signal handler, so file IO and allocation are fine here.

struct ModuleSymtab {
  bool et_exec = false;  // ET_EXEC symbols carry absolute addresses
  // (start, end, name), sorted by start. end==start means unknown size.
  std::vector<std::tuple<std::uintptr_t, std::uintptr_t, std::string>> funcs;
};

ModuleSymtab load_symtab(const char* path) {
  ModuleSymtab table;
  std::ifstream in(path, std::ios::binary);
  if (!in) return table;
  Elf64_Ehdr ehdr{};
  if (!in.read(reinterpret_cast<char*>(&ehdr), sizeof ehdr)) return table;
  if (std::memcmp(ehdr.e_ident, ELFMAG, SELFMAG) != 0 ||
      ehdr.e_ident[EI_CLASS] != ELFCLASS64 || ehdr.e_shentsize != sizeof(Elf64_Shdr)) {
    return table;
  }
  table.et_exec = ehdr.e_type == ET_EXEC;
  std::vector<Elf64_Shdr> shdrs(ehdr.e_shnum);
  in.seekg(static_cast<std::streamoff>(ehdr.e_shoff));
  if (!in.read(reinterpret_cast<char*>(shdrs.data()),
               static_cast<std::streamsize>(shdrs.size() * sizeof(Elf64_Shdr)))) {
    return table;
  }
  for (const Elf64_Shdr& sh : shdrs) {
    if (sh.sh_type != SHT_SYMTAB || sh.sh_link >= shdrs.size() ||
        sh.sh_entsize != sizeof(Elf64_Sym)) {
      continue;
    }
    std::vector<Elf64_Sym> syms(sh.sh_size / sizeof(Elf64_Sym));
    in.seekg(static_cast<std::streamoff>(sh.sh_offset));
    if (!in.read(reinterpret_cast<char*>(syms.data()),
                 static_cast<std::streamsize>(sh.sh_size))) {
      continue;
    }
    const Elf64_Shdr& str = shdrs[sh.sh_link];
    std::string strtab(str.sh_size, '\0');
    in.seekg(static_cast<std::streamoff>(str.sh_offset));
    if (!in.read(strtab.data(), static_cast<std::streamsize>(str.sh_size))) continue;
    for (const Elf64_Sym& sym : syms) {
      if (ELF64_ST_TYPE(sym.st_info) != STT_FUNC || sym.st_value == 0) continue;
      if (sym.st_name >= strtab.size() || strtab[sym.st_name] == '\0') continue;
      table.funcs.emplace_back(sym.st_value, sym.st_value + sym.st_size,
                               strtab.c_str() + sym.st_name);
    }
  }
  std::sort(table.funcs.begin(), table.funcs.end());
  return table;
}

// Returns the mangled name covering module-relative (or absolute, for
// ET_EXEC) address `addr`, or nullptr. Cache key is the module path.
const char* symtab_lookup(const char* path, std::uintptr_t fbase, std::uintptr_t pc) {
  static std::mutex mu;
  static std::map<std::string, ModuleSymtab> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto [it, inserted] = cache.try_emplace(path);
  if (inserted) it->second = load_symtab(path);
  const ModuleSymtab& table = it->second;
  if (table.funcs.empty()) return nullptr;
  const std::uintptr_t addr = table.et_exec ? pc : pc - fbase;
  auto pos = std::upper_bound(
      table.funcs.begin(), table.funcs.end(), addr,
      [](std::uintptr_t a, const auto& entry) { return a < std::get<0>(entry); });
  if (pos == table.funcs.begin()) return nullptr;
  --pos;
  const auto& [start, end, name] = *pos;
  // Accept zero-size symbols (hand-written asm) only within a short window.
  if (addr >= (end > start ? end : start + 4096)) return nullptr;
  return name.c_str();
}

std::string demangled_frame(const char* mangled) {
  int status = 0;
  char* dem = abi::__cxa_demangle(mangled, nullptr, nullptr, &status);
  std::string name = (status == 0 && dem != nullptr) ? dem : mangled;
  std::free(dem);
  strip_arguments(name);
  sanitize_frame(name);
  return name;
}

std::atomic<Sampler*> g_instance{nullptr};

}  // namespace

std::string symbolize_pc(std::uintptr_t pc, bool* resolved) {
  if (resolved != nullptr) *resolved = false;
  Dl_info info{};
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_sname != nullptr) {
      if (resolved != nullptr) *resolved = true;
      return demangled_frame(info.dli_sname);
    }
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      // No dynamic symbol covers this pc — typical for static functions and
      // lambda bodies. The module's full .symtab usually still has it.
      const std::uintptr_t fbase = reinterpret_cast<std::uintptr_t>(info.dli_fbase);
      if (const char* sym = symtab_lookup(info.dli_fname, fbase, pc)) {
        if (resolved != nullptr) *resolved = true;
        return demangled_frame(sym);
      }
      const char* slash = std::strrchr(info.dli_fname, '/');
      const char* base = slash != nullptr ? slash + 1 : info.dli_fname;
      char buf[512];
      std::snprintf(buf, sizeof(buf), "%s+0x%llx", base,
                    static_cast<unsigned long long>(pc - fbase));
      std::string name(buf);
      sanitize_frame(name);
      return name;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(pc));
  return buf;
}

bool frame_is_resolved(const std::string& frame) {
  if (frame.rfind("0x", 0) == 0) return false;
  return frame.find("+0x") == std::string::npos;
}

// --- Sampler ----------------------------------------------------------------------

struct Sampler::Impl {
  struct FoldKey {
    std::string thread;
    std::uint32_t phase = 0;
    bool on_cpu = true;
    std::vector<std::uintptr_t> pcs;  // leaf-first, as captured
    bool operator<(const FoldKey& o) const {
      if (on_cpu != o.on_cpu) return on_cpu && !o.on_cpu;  // cpu sorts first
      if (phase != o.phase) return phase < o.phase;
      if (thread != o.thread) return thread < o.thread;
      return pcs < o.pcs;
    }
  };

  Options options;
  mutable std::mutex mu;
  std::condition_variable cv;
  bool stopping = false;
  bool running = false;
  std::thread agg_thread;
  std::map<FoldKey, std::uint64_t> counts;
  std::uint64_t cpu_samples = 0;
  std::uint64_t offcpu_samples = 0;
  std::uint64_t wall_sweeps = 0;
  mutable std::unordered_map<std::uintptr_t, std::pair<std::string, bool>> symcache;
  timer_t cpu_timer{};
  bool cpu_timer_ok = false;
  bool itimer_fallback = false;
  std::uint64_t agg_tid = 0;

  // Everything below runs on the aggregator thread or under mu — never in
  // signal context.

  void drain_locked() {
    int n = g_ring_count.load(std::memory_order_relaxed);
    if (n > static_cast<int>(kMaxThreads)) n = static_cast<int>(kMaxThreads);
    for (int i = 0; i < n; ++i) {
      ThreadRing& ring = g_rings[i];
      const std::uint32_t head = ring.head.load(std::memory_order_acquire);
      std::uint32_t tail = ring.tail.load(std::memory_order_relaxed);
      while (tail != head) {
        const Slot& slot = ring.slots[tail % kRingSlots];
        FoldKey key;
        key.thread.assign(ring.name[0] != '\0' ? ring.name : "anon");
        key.phase = slot.phase;
        key.on_cpu = slot.on_cpu != 0;
        key.pcs.reserve(slot.n_pcs);
        for (int f = 0; f < slot.n_pcs; ++f) {
          key.pcs.push_back(reinterpret_cast<std::uintptr_t>(slot.pcs[f]));
        }
        ++counts[key];
        if (key.on_cpu) {
          ++cpu_samples;
        } else {
          ++offcpu_samples;
        }
        ++tail;
      }
      ring.tail.store(tail, std::memory_order_release);
    }
  }

  void wall_sweep() {
    DIR* dir = ::opendir("/proc/self/task");
    if (dir == nullptr) return;
    const pid_t pid = ::getpid();
    while (dirent* entry = ::readdir(dir)) {
      if (entry->d_name[0] == '.') continue;
      const long tid = std::strtol(entry->d_name, nullptr, 10);
      if (tid <= 0) continue;
      if (static_cast<std::uint64_t>(tid) == agg_tid) continue;  // not ourselves
      ::syscall(SYS_tgkill, pid, static_cast<pid_t>(tid), kWallSampleSignal);
    }
    ::closedir(dir);
    ++wall_sweeps;
  }

  void aggregator_loop() {
    set_current_thread_name("gtv-sampler");
    agg_tid = static_cast<std::uint64_t>(::syscall(SYS_gettid));
    const auto wall_period = std::chrono::microseconds(
        options.wall_hz > 0 ? 1000000 / options.wall_hz : 0);
    auto tick = std::chrono::milliseconds(options.drain_interval_ms);
    if (options.wall_hz > 0 && wall_period < tick) {
      tick = std::chrono::duration_cast<std::chrono::milliseconds>(wall_period);
      if (tick.count() < 1) tick = std::chrono::milliseconds(1);
    }
    auto next_wall = std::chrono::steady_clock::now() + wall_period;
    std::unique_lock<std::mutex> lock(mu);
    while (!stopping) {
      cv.wait_for(lock, tick, [this] { return stopping; });
      if (stopping) break;
      if (options.wall_hz > 0) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= next_wall) {
          lock.unlock();
          wall_sweep();
          lock.lock();
          // Skip missed periods instead of bursting: back-to-back sweeps
          // would leave no wall interval for the blocked-vs-busy test.
          next_wall = now + wall_period;
        }
      }
      drain_locked();
    }
  }

  const std::string& symbolize_cached(std::uintptr_t pc, bool leaf, bool* resolved) const {
    // Non-leaf frames are return addresses: look up pc-1 so the call site's
    // own function wins, not whatever happens to start at the return address.
    const std::uintptr_t lookup = leaf ? pc : pc - 1;
    auto it = symcache.find(lookup);
    if (it == symcache.end()) {
      bool ok = false;
      std::string name = symbolize_pc(lookup, &ok);
      it = symcache.emplace(lookup, std::make_pair(std::move(name), ok)).first;
    }
    if (resolved != nullptr) *resolved = it->second.second;
    return it->second.first;
  }

  std::string phase_label(std::uint32_t phase) const {
    if (options.phase_name != nullptr) {
      const char* s = options.phase_name(phase);
      if (s != nullptr && s[0] != '\0') {
        std::string label(s);
        sanitize_frame(label);
        return label;
      }
    }
    return "p" + std::to_string(phase);
  }
};

Sampler* Sampler::start_global(Options options,
                               const std::atomic<std::uint64_t>* round,
                               const std::atomic<std::uint32_t>* phase) {
  static Sampler* singleton = nullptr;
  static std::mutex start_mu;
  std::lock_guard<std::mutex> start_lock(start_mu);
  if (singleton == nullptr) {
    singleton = new Sampler();  // leaked: handlers may race any teardown
    singleton->impl_ = new Impl();
  }
  Impl* impl = singleton->impl_;
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    if (impl->running) return singleton;
    impl->options = options;
    impl->counts.clear();
    impl->symcache.clear();
    impl->cpu_samples = 0;
    impl->offcpu_samples = 0;
    impl->wall_sweeps = 0;
    impl->stopping = false;
  }
  const int n = g_ring_count.load(std::memory_order_relaxed);
  for (int i = 0; i < n && i < static_cast<int>(kMaxThreads); ++i) {
    g_rings[i].dropped.store(0, std::memory_order_relaxed);
  }
  g_pool_exhausted.store(0, std::memory_order_relaxed);
  g_round.store(round, std::memory_order_relaxed);
  g_phase.store(phase, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);

#if defined(GTV_HAVE_BACKTRACE)
  // Same warm-up the blackbox crash handlers do: glibc backtrace lazily
  // dlopens libgcc (malloc + dlopen) on first use — force that outside
  // signal context before any timer can fire.
  void* warm[4];
  ::backtrace(warm, 4);
#endif
  install_sample_handlers();

  impl->agg_thread = std::thread([impl] { impl->aggregator_loop(); });
  g_armed.store(true, std::memory_order_release);

  if (options.cpu_hz > 0) {
    const long long period_ns = 1000000000LL / options.cpu_hz;
    sigevent sev{};
    sev.sigev_notify = SIGEV_SIGNAL;
    sev.sigev_signo = kCpuSampleSignal;
    impl->cpu_timer_ok =
        ::timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &impl->cpu_timer) == 0;
    if (impl->cpu_timer_ok) {
      itimerspec its{};
      its.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000LL);
      its.it_interval.tv_nsec = static_cast<long>(period_ns % 1000000000LL);
      its.it_value = its.it_interval;
      ::timer_settime(impl->cpu_timer, 0, &its, nullptr);
    } else {
      // Pre-POSIX-timer spelling of the same clock.
      itimerval itv{};
      itv.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000LL);
      itv.it_interval.tv_usec = static_cast<suseconds_t>((period_ns / 1000) % 1000000);
      itv.it_value = itv.it_interval;
      impl->itimer_fallback = ::setitimer(ITIMER_PROF, &itv, nullptr) == 0;
    }
  }

  {
    std::lock_guard<std::mutex> lock(impl->mu);
    impl->running = true;
  }
  g_instance.store(singleton, std::memory_order_release);
  return singleton;
}

Sampler* Sampler::get() {
  Sampler* s = g_instance.load(std::memory_order_acquire);
  if (s == nullptr || !s->running()) return nullptr;
  return s;
}

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (!impl_->running) return;
  }
  // Disarm first: a timer signal in flight after this point records nothing.
  g_armed.store(false, std::memory_order_release);
  if (impl_->cpu_timer_ok) {
    ::timer_delete(impl_->cpu_timer);
    impl_->cpu_timer_ok = false;
  }
  if (impl_->itimer_fallback) {
    itimerval off{};
    ::setitimer(ITIMER_PROF, &off, nullptr);
    impl_->itimer_fallback = false;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  if (impl_->agg_thread.joinable()) impl_->agg_thread.join();
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->drain_locked();  // samples published before disarm
  impl_->running = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->running;
}

SamplerStats Sampler::stats() const {
  SamplerStats out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.cpu_samples = impl_->cpu_samples;
  out.offcpu_samples = impl_->offcpu_samples;
  out.wall_sweeps = impl_->wall_sweeps;
  int n = g_ring_count.load(std::memory_order_relaxed);
  if (n > static_cast<int>(kMaxThreads)) n = static_cast<int>(kMaxThreads);
  out.threads_seen = static_cast<std::uint64_t>(n);
  out.dropped = g_pool_exhausted.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    out.dropped += g_rings[i].dropped.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<HotEntry> Sampler::top_hot(std::size_t k) const {
  std::map<std::pair<std::string, bool>, std::uint64_t> by_leaf;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [key, count] : impl_->counts) {
      if (key.pcs.empty()) continue;
      const std::string& leaf = impl_->symbolize_cached(key.pcs[0], true, nullptr);
      by_leaf[{leaf, key.on_cpu}] += count;
    }
  }
  std::vector<HotEntry> entries;
  entries.reserve(by_leaf.size());
  for (const auto& [leaf, count] : by_leaf) {
    entries.push_back(HotEntry{leaf.first, count, leaf.second});
  }
  std::sort(entries.begin(), entries.end(), [](const HotEntry& a, const HotEntry& b) {
    if (a.samples != b.samples) return a.samples > b.samples;
    if (a.frame != b.frame) return a.frame < b.frame;
    return a.on_cpu && !b.on_cpu;
  });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

namespace {

// Every stack roots in bootstrap scaffolding that stripped system libraries
// cannot symbolize: __libc_start_call_main sits between __libc_start_main and
// main, and thread stacks bottom out in clone3 / start_thread / the libstdc++
// std::thread trampoline — none exported via .dynsym, so they fold as
// "libc.so.6+0x...". Those frames attribute no time and the folded line
// already names the thread, so root the stack at main (when present) or at
// the first resolvable frame instead of carrying the noise into every line.
void trim_bootstrap_root(std::vector<std::string>& frames) {
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (frames[i] == "main") {
      frames.erase(frames.begin(), frames.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  std::size_t cut = 0;
  while (cut + 1 < frames.size() && !frame_is_resolved(frames[cut])) ++cut;
  frames.erase(frames.begin(), frames.begin() + static_cast<std::ptrdiff_t>(cut));
}

}  // namespace

std::string Sampler::folded(const std::string& party) const {
  std::string clean_party = party.empty() ? "party" : party;
  sanitize_frame(clean_party);
  std::map<std::string, std::uint64_t> lines;
  SamplerStats st = stats();
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [key, count] : impl_->counts) {
    std::string line = clean_party;
    line += ';';
    line += key.on_cpu ? "cpu" : "offcpu";
    line += ';';
    line += impl_->phase_label(key.phase);
    line += ';';
    line += key.thread;
    // Root-first: captured leaf-first, emit reversed.
    std::vector<std::string> frames;
    frames.reserve(key.pcs.size());
    for (std::size_t i = key.pcs.size(); i-- > 0;) {
      frames.push_back(impl_->symbolize_cached(key.pcs[i], i == 0, nullptr));
    }
    trim_bootstrap_root(frames);
    for (const std::string& frame : frames) {
      line += ';';
      line += frame;
    }
    lines[line] += count;
  }
  std::string out;
  out += "# gtv-folded " + std::to_string(kFoldedFormatVersion) + "\n";
  out += "# party " + clean_party + "\n";
  out += "# cpu_hz " + std::to_string(impl_->options.cpu_hz) + "\n";
  out += "# wall_hz " + std::to_string(impl_->options.wall_hz) + "\n";
  out += "# cpu_samples " + std::to_string(st.cpu_samples) + "\n";
  out += "# offcpu_samples " + std::to_string(st.offcpu_samples) + "\n";
  out += "# wall_sweeps " + std::to_string(st.wall_sweeps) + "\n";
  out += "# dropped " + std::to_string(st.dropped) + "\n";
  out += "# threads " + std::to_string(st.threads_seen) + "\n";
  for (const auto& [line, count] : lines) {
    out += line;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

bool Sampler::write_folded(const std::string& path, const std::string& party) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << folded(party);
  return static_cast<bool>(out);
}

}  // namespace gtv::obs::sampler
