#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace gtv::obs {

namespace {

// -1 = uninitialised, 0 = off, 1 = on.
std::atomic<int> g_timing_state{-1};

int timing_state_from_env() {
  const char* v = std::getenv("GTV_METRICS");
  if (v == nullptr || v[0] == '\0' || std::string(v) == "0") return 0;
  return 1;
}

}  // namespace

bool timing_enabled() {
  int state = g_timing_state.load(std::memory_order_relaxed);
  if (state < 0) {
    state = timing_state_from_env();
    g_timing_state.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void set_timing_enabled(bool enabled) {
  g_timing_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

std::string json_escape(const std::string& s) { return json::escape(s); }

void Gauge::add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (v > mx && !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
  double mn = min_.load(std::memory_order_relaxed);
  while (v < mn && !min_.compare_exchange_weak(mn, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::uint64_t in_bucket = buckets_[b].load(std::memory_order_relaxed);
    if (cumulative + in_bucket >= rank) {
      if (b == bounds_.size()) return max();  // overflow bucket
      const double lower = b == 0 ? 0.0 : bounds_[b - 1];
      const double upper = bounds_[b];
      const double frac =
          static_cast<double>(rank - cumulative) / static_cast<double>(in_bucket);
      // Interpolation assumes samples are spread across the bucket; when they
      // cluster at an edge the raw estimate can leave the observed range
      // entirely (four samples of 3.0 in (0,10] would report p100 = 10.0).
      return std::clamp(lower + frac * (upper - lower), min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

const std::vector<double>& default_latency_bounds_ms() {
  static const std::vector<double> kBounds = {
      0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1,    2,    5,     10,
      20,   50,   100,  200, 500, 1e3, 2e3,  5e3,  1e4,   3e4, 6e4};
  return kBounds;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] only.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

// GTV_METRICS_DUMP=<path>: write the final registry state on exit so health
// gauges and traffic counters are scrapeable without the JSON tooling.
void install_metrics_dump() {
  static const std::string path = [] {
    const char* p = std::getenv("GTV_METRICS_DUMP");
    return std::string(p != nullptr ? p : "");
  }();
  if (path.empty()) return;
  static const bool installed = [] {
    // Registered after the registry's function-local static is constructed,
    // so this handler runs before the registry is destroyed.
    std::atexit([] {
      std::ofstream out(path);
      if (out) out << MetricsRegistry::instance().to_prometheus();
    });
    return true;
  }();
  (void)installed;
}

}  // namespace

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  install_metrics_dump();
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (upper_bounds.empty()) upper_bounds = default_latency_bounds_ms();
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << c->value();
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":" << g->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "" : ",") << '"' << json_escape(name) << "\":{"
       << "\"count\":" << h->count() << ",\"sum\":" << h->sum()
       << ",\"p50\":" << h->percentile(50) << ",\"p90\":" << h->percentile(90)
       << ",\"p99\":" << h->percentile(99) << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " counter\n" << pn << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " gauge\n" << pn << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string pn = prometheus_name(name);
    os << "# TYPE " << pn << " histogram\n";
    const auto& bounds = h->bounds();
    const auto counts = h->bucket_counts();
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      cumulative += counts[b];
      os << pn << "_bucket{le=\"" << bounds[b] << "\"} " << cumulative << '\n';
    }
    os << pn << "_bucket{le=\"+Inf\"} " << h->count() << '\n';
    os << pn << "_sum " << h->sum() << '\n';
    os << pn << "_count " << h->count() << '\n';
  }
  return os.str();
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace gtv::obs
