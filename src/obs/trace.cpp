#include "obs/trace.h"

#include <chrono>
#include <cstdlib>

namespace gtv::obs {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return kEpoch;
}

std::uint32_t this_thread_trace_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_current_party = kDriverPid;

}  // namespace

TraceSink::TraceSink() {
  trace_epoch();  // pin the epoch no later than first sink use
  if (const char* path = std::getenv("GTV_TRACE")) {
    if (path[0] != '\0') open(path);
  }
}

TraceSink& TraceSink::instance() {
  // Leaked on purpose — see the shutdown note in trace.h. The atexit hook
  // flushes the file; emits that happen later find active_ == false and
  // a still-alive mutex, so they are dropped instead of racing teardown.
  static TraceSink* sink = [] {
    auto* s = new TraceSink();
    std::atexit([] { TraceSink::instance().close(); });
    return s;
  }();
  return *sink;
}

void TraceSink::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) out_.close();
  out_.open(path, std::ios::out | std::ios::trunc);
  active_.store(out_.is_open(), std::memory_order_relaxed);
  if (out_.is_open()) {
    for (const auto& [pid, name] : parties_) write_party_metadata_locked(pid, name);
  }
}

void TraceSink::close() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.store(false, std::memory_order_relaxed);
  if (out_.is_open()) out_.close();
}

void TraceSink::declare_party(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = parties_.emplace(pid, name);
  if (!inserted) {
    if (it->second == name) return;  // already declared, nothing new to emit
    it->second = name;
  }
  if (out_.is_open()) write_party_metadata_locked(pid, name);
}

void TraceSink::write_party_metadata_locked(int pid, const std::string& name) {
  out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}\n";
}

void TraceSink::emit_complete(const char* name, std::uint64_t ts_us,
                              std::uint64_t dur_us) {
  const std::uint32_t tid = this_thread_trace_id();
  const int pid = t_current_party;
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"X\",\"ts\":" << ts_us
       << ",\"dur\":" << dur_us << ",\"pid\":" << pid << ",\"tid\":" << tid << "}\n";
}

void TraceSink::emit_flow(const char* name, std::uint64_t flow_id, char phase,
                          int pid, std::uint64_t ts_us) {
  const std::uint32_t tid = this_thread_trace_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"" << phase
       << "\",\"id\":" << flow_id << ",\"ts\":" << ts_us << ",\"pid\":" << pid
       << ",\"tid\":" << tid;
  // bp:"e" binds the finish to its enclosing slice so viewers draw the
  // arrow into the receive span rather than the next slice on the track.
  if (phase == 'f') out_ << ",\"bp\":\"e\"";
  out_ << "}\n";
}

void TraceSink::emit_instant(const char* name, std::uint64_t ts_us,
                             const char* severity, double value, double threshold) {
  const std::uint32_t tid = this_thread_trace_id();
  const int pid = t_current_party;
  std::lock_guard<std::mutex> lock(mu_);
  if (!out_.is_open()) return;
  out_ << "{\"name\":\"" << json_escape(name) << "\",\"ph\":\"i\",\"s\":\"p\",\"ts\":"
       << ts_us << ",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"args\":{\"severity\":\"" << json_escape(severity)
       << "\",\"value\":" << value << ",\"threshold\":" << threshold << "}}\n";
}

std::uint64_t TraceSink::next_flow_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceSink::now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - trace_epoch())
                                        .count());
}

int TraceSink::current_party() { return t_current_party; }

PartyScope::PartyScope(int pid) : prev_(t_current_party) { t_current_party = pid; }

PartyScope::~PartyScope() { t_current_party = prev_; }

ScopedTimer::ScopedTimer(const char* name, Histogram* hist, double* out_ms, bool always)
    : name_(name),
      hist_(hist),
      out_ms_(out_ms),
      active_(always || out_ms != nullptr || timing_enabled() ||
              TraceSink::instance().active()) {
  if (active_) start_us_ = TraceSink::now_us();
}

ScopedTimer::~ScopedTimer() {
  if (!active_) return;
  const std::uint64_t end_us = TraceSink::now_us();
  const std::uint64_t dur_us = end_us - start_us_;
  const double dur_ms = static_cast<double>(dur_us) / 1000.0;
  if (out_ms_ != nullptr) *out_ms_ += dur_ms;
  if (hist_ != nullptr) hist_->record(dur_ms);
  TraceSink& sink = TraceSink::instance();
  if (sink.active()) sink.emit_complete(name_, start_us_, dur_us);
}

}  // namespace gtv::obs
