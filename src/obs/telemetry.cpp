#include "obs/telemetry.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace gtv::obs {

std::uint64_t RoundTelemetry::bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& l : links) total += l.bytes;
  return total;
}

std::uint64_t RoundTelemetry::messages_sent() const {
  std::uint64_t total = 0;
  for (const auto& l : links) total += l.messages;
  return total;
}

std::string RoundTelemetry::to_json() const {
  std::ostringstream os;
  os << "{\"round\":" << round << ",\"phases_ms\":{"
     << "\"total\":" << total_ms << ",\"cv_generation\":" << cv_generation_ms
     << ",\"fake_forward\":" << fake_forward_ms
     << ",\"real_forward\":" << real_forward_ms
     << ",\"critic_backward\":" << critic_backward_ms
     << ",\"gradient_penalty\":" << gradient_penalty_ms
     << ",\"generator_step\":" << generator_step_ms << ",\"shuffle\":" << shuffle_ms
     << "},\"losses\":{\"d_loss\":" << d_loss << ",\"g_loss\":" << g_loss
     << ",\"gp\":" << gp << ",\"wasserstein\":" << wasserstein
     << "},\"mem_peak_bytes\":{"
     << "\"total\":" << mem_peak_bytes.total
     << ",\"cv_generation\":" << mem_peak_bytes.cv_generation
     << ",\"fake_forward\":" << mem_peak_bytes.fake_forward
     << ",\"real_forward\":" << mem_peak_bytes.real_forward
     << ",\"critic_backward\":" << mem_peak_bytes.critic_backward
     << ",\"gradient_penalty\":" << mem_peak_bytes.gradient_penalty
     << ",\"generator_step\":" << mem_peak_bytes.generator_step
     << ",\"shuffle\":" << mem_peak_bytes.shuffle << "},";
  if (health.collected) os << "\"health\":" << health.to_json() << ',';
  os << "\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    os << (i == 0 ? "" : ",") << "{\"link\":\"" << json_escape(links[i].link)
       << "\",\"bytes\":" << links[i].bytes << ",\"messages\":" << links[i].messages
       << '}';
  }
  os << "],\"bytes_sent\":" << bytes_sent() << ",\"messages_sent\":" << messages_sent()
     << '}';
  return os.str();
}

RoundTelemetry aggregate(const std::vector<RoundTelemetry>& rounds) {
  RoundTelemetry out;
  out.round = rounds.size();
  std::map<std::string, LinkDelta> links;
  for (const auto& r : rounds) {
    out.total_ms += r.total_ms;
    out.cv_generation_ms += r.cv_generation_ms;
    out.fake_forward_ms += r.fake_forward_ms;
    out.real_forward_ms += r.real_forward_ms;
    out.critic_backward_ms += r.critic_backward_ms;
    out.gradient_penalty_ms += r.gradient_penalty_ms;
    out.generator_step_ms += r.generator_step_ms;
    out.shuffle_ms += r.shuffle_ms;
    out.d_loss += r.d_loss;
    out.g_loss += r.g_loss;
    out.gp += r.gp;
    out.wasserstein += r.wasserstein;
    auto& peaks = out.mem_peak_bytes;
    const auto& rp = r.mem_peak_bytes;
    peaks.total = std::max(peaks.total, rp.total);
    peaks.cv_generation = std::max(peaks.cv_generation, rp.cv_generation);
    peaks.fake_forward = std::max(peaks.fake_forward, rp.fake_forward);
    peaks.real_forward = std::max(peaks.real_forward, rp.real_forward);
    peaks.critic_backward = std::max(peaks.critic_backward, rp.critic_backward);
    peaks.gradient_penalty = std::max(peaks.gradient_penalty, rp.gradient_penalty);
    peaks.generator_step = std::max(peaks.generator_step, rp.generator_step);
    peaks.shuffle = std::max(peaks.shuffle, rp.shuffle);
    for (const auto& l : r.links) {
      auto& slot = links[l.link];
      slot.link = l.link;
      slot.bytes += l.bytes;
      slot.messages += l.messages;
    }
  }
  if (!rounds.empty()) {
    const float n = static_cast<float>(rounds.size());
    out.d_loss /= n;
    out.g_loss /= n;
    out.gp /= n;
    out.wasserstein /= n;
  }
  out.links.reserve(links.size());
  for (auto& [name, delta] : links) out.links.push_back(std::move(delta));
  return out;
}

std::string telemetry_to_json(const std::vector<RoundTelemetry>& rounds) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    os << (i == 0 ? "" : ",") << rounds[i].to_json();
  }
  os << ']';
  return os.str();
}

}  // namespace gtv::obs
