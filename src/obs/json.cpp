#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace gtv::obs::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) fail("invalid literal");
    pos_ += lit.size();
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        expect_literal("true");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        expect_literal("false");
        Value v;
        v.type = Value::Type::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        expect_literal("null");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = parse_value();
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our emitters only \u-escape control characters; encode the BMP
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid fraction");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const Value& Value::at(const std::string& key) const {
  if (!is_object()) throw std::out_of_range("json: at(" + key + ") on non-object");
  auto it = object.find(key);
  if (it == object.end()) throw std::out_of_range("json: missing key " + key);
  return it->second;
}

double Value::num_or(const std::string& key, double fallback) const {
  if (!is_object()) return fallback;
  auto it = object.find(key);
  return it != object.end() && it->second.is_number() ? it->second.number : fallback;
}

std::string Value::str_or(const std::string& key, const std::string& fallback) const {
  if (!is_object()) return fallback;
  auto it = object.find(key);
  return it != object.end() && it->second.is_string() ? it->second.str : fallback;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double safe_num(double v) {
  if (std::isnan(v)) return 0.0;
  if (std::isinf(v)) return v > 0 ? 1e308 : -1e308;
  return v;
}

std::string prom_label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace gtv::obs::json
