// gtv::obs::health — training-health monitoring for the GTV stack.
//
// PR 1/2 gave the repo *system* observability (spans, op profiler, memory
// ledger, cross-party flows); this layer watches whether the GAN itself is
// healthy. WGAN-GP training fails silently — exploding critic gradients,
// drifting Wasserstein estimates, mode collapse — and the eval stack only
// notices after a full run. Three collection tiers feed one rule engine:
//
//   1. per-module gradient/weight/update statistics (L2 norm, max-abs,
//      update-to-weight ratio, NaN/Inf sentinels) harvested from every
//      nn::Adam step (AdamStepStats);
//   2. WGAN-GP detectors over the round losses — gradient-penalty
//      magnitude, Wasserstein-estimate drift and sign flips,
//      critic/generator loss divergence, and a stalled-training detector;
//   3. per-round sample-quality probes: every K rounds the trainer draws a
//      small generated batch and compares per-column marginals against the
//      real shards (categorical JSD, continuous mean/std drift), catching
//      collapse long before the eval stack runs.
//
// Each rule is an EWMA/threshold check emitting a structured
// HealthAlert{severity, rule, round, value, threshold}. Alerts land in the
// round's RoundHealth record (rides inside RoundTelemetry), in the
// process-wide HealthLog (serialized to `<fig>.health.json` by the
// benches), in the MetricsRegistry (`gtv.health.*` gauges/counters, so
// they are Prometheus-scrapeable), and — when a trace sink is open — as
// instant events on the trainer's Perfetto row.
//
// Gating follows the PR 2 profiler contract: everything here is disarmed
// to a single relaxed atomic load per hook site unless GTV_HEALTH is set
// (any value except "0") or set_health_enabled(true) was called.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gtv::obs {

// Global switch for health collection (see file comment).
bool health_enabled();
void set_health_enabled(bool enabled);

enum class Severity { kInfo = 0, kWarn = 1, kFatal = 2 };
const char* to_string(Severity severity);

// One structured alert from a health rule. `value` is the observation that
// tripped the rule, `threshold` the limit it was compared against.
struct HealthAlert {
  Severity severity = Severity::kInfo;
  std::string rule;
  std::size_t round = 0;
  double value = 0.0;
  double threshold = 0.0;
  // Free-form context: which module/column, what the EWMA baseline was.
  std::string detail;

  // One JSON object (single line, no trailing newline).
  std::string to_json() const;
};

// Per-module optimizer-step statistics, one record per (party, network)
// pair and round ("server.D", "client0.G", ...). Produced from
// nn::AdamStepStats by the trainer.
struct ModuleGradStats {
  std::string module;
  double grad_norm = 0.0;     // L2 over all parameter gradients
  double weight_norm = 0.0;   // L2 over all parameter values (post-step)
  double update_norm = 0.0;   // L2 over the applied Adam deltas
  double grad_max_abs = 0.0;
  std::uint64_t nonfinite = 0;  // NaN/Inf gradient elements seen

  // Relative step size ||update|| / ||weights||; the classic "is the LR
  // sane" signal (healthy Adam sits around 1e-3 .. 1e-2 per step).
  double update_ratio() const;
  std::string to_json() const;
};

// One column's sample-quality probe result. Categorical columns report the
// marginal Jensen-Shannon divergence (base 2, in [0,1]) against the real
// shard; continuous/mixed columns report mean/std drift in units of the
// real column's standard deviation. `jsd` is -1 for non-categoricals.
struct ColumnProbe {
  std::string column;  // "client<k>.<column name>"
  double jsd = -1.0;
  double mean_drift = 0.0;
  double std_drift = 0.0;

  std::string to_json() const;
};

// The per-round health record that rides inside RoundTelemetry. Default
// state is "not collected": all vectors empty (no allocations) and the
// telemetry JSON omits the block entirely, so disarmed output is
// byte-identical to the pre-health format.
struct RoundHealth {
  bool collected = false;
  std::vector<ModuleGradStats> modules;
  std::vector<ColumnProbe> probes;  // empty on rounds without a probe
  std::vector<HealthAlert> alerts;

  std::uint64_t nonfinite_grads() const;
  bool has_fatal() const;
  std::string to_json() const;
};

// Rule thresholds. Defaults are deliberately conservative: a healthy
// seed-config run must stay silent (pinned by health_divergence_test),
// while a destabilized critic LR must turn fatal within a few rounds.
struct HealthThresholds {
  // --- gradient rules (per module, every round) -----------------------------
  double grad_norm_fatal = 1e3;     // critic_grad_norm / generator_grad_norm
  double grad_growth_ratio = 25.0;  // warn: grad norm vs its own EWMA
  double update_ratio_max = 0.5;    // warn: ||update||/||weights|| per step
  // --- WGAN-GP loss rules ---------------------------------------------------
  double gp_max = 100.0;                  // warn: raw penalty value
  double wasserstein_drift_ratio = 10.0;  // warn: |w - ewma| vs |ewma|
  std::size_t sign_flip_window = 8;       // rounds of sign history kept
  std::size_t sign_flip_max = 6;          // warn at >= this many flips
  double loss_divergence_ratio = 20.0;    // warn: fast/slow |d_loss| EWMA
  // --- stalled-training detector --------------------------------------------
  std::size_t stall_window = 20;   // rounds without progress before alerting
  double stall_epsilon = 1e-4;     // relative |d_loss|+|g_loss| change floor
  // --- sample-quality probe rules --------------------------------------------
  double probe_jsd_max = 0.6;       // warn: per-column marginal JSD
  double probe_mean_drift_max = 3.0;  // warn: |mean drift| in real-std units
  double probe_std_drift_max = 0.9;   // warn: collapse/blow-up of column std
  // --- warmups ---------------------------------------------------------------
  // EWMA-relative rules need a baseline; probe rules exempt early training
  // (an untrained generator legitimately has terrible marginals).
  std::size_t detector_warmup_rounds = 10;
  std::size_t probe_warmup_rounds = 20;
  double ewma_alpha = 0.2;
};

// Trainer-facing configuration (lives in GtvOptions::health).
struct HealthOptions {
  HealthThresholds thresholds;
  // Draw a probe batch every `probe_interval` rounds (0 disables probes).
  std::size_t probe_interval = 10;
  std::size_t probe_rows = 64;
  // When true, GtvTrainer::train_round() throws FatalHealthError after
  // recording a fatal alert. Default off: alert-only, training continues.
  bool abort_on_fatal = false;
};

// The rule engine. One instance per trainer; holds the EWMA state the
// drift/growth/stall rules compare against. Not thread-safe (the trainer
// calls it from the training thread only).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthThresholds thresholds = {});

  // Evaluates every rule for one round. Appends fired alerts to
  // `health.alerts`, records them in HealthLog + MetricsRegistry
  // (`gtv.health.*`), and emits trace instant events when a sink is open.
  void evaluate(std::size_t round, float d_loss, float g_loss, float gp,
                float wasserstein, RoundHealth& health);

  const HealthThresholds& thresholds() const { return thresholds_; }

 private:
  struct Ewma {
    double value = 0.0;
    std::size_t samples = 0;
    void update(double v, double alpha);
    bool primed() const { return samples >= 3; }
  };

  void emit(HealthAlert alert, RoundHealth& health);

  HealthThresholds thresholds_;
  std::map<std::string, Ewma> grad_ewma_;  // per-module grad-norm baseline
  Ewma wasserstein_ewma_;
  Ewma loss_fast_;
  Ewma loss_slow_;
  std::vector<int> wasserstein_signs_;  // ring, size <= sign_flip_window
  double last_progress_ = 0.0;
  std::size_t stalled_rounds_ = 0;
};

// Process-wide alert accumulator. HealthMonitor::evaluate records every
// alert here; benches serialize it to `<fig>.health.json` and tests to the
// alert JSONL artefact. Thread-safe.
class HealthLog {
 public:
  static HealthLog& instance();

  void record(const HealthAlert& alert);
  std::vector<HealthAlert> snapshot() const;
  std::size_t total() const;
  std::size_t count(Severity severity) const;
  void reset();

  // JSON array of HealthAlert::to_json records.
  std::string alerts_json() const;
  // One alert object per line (the alert JSONL artefact shape).
  std::string alerts_jsonl() const;
  // {"enabled":..,"total":..,"info":..,"warn":..,"fatal":..,"rules":{...}}
  std::string summary_json() const;

  HealthLog(const HealthLog&) = delete;
  HealthLog& operator=(const HealthLog&) = delete;

 private:
  HealthLog() = default;

  mutable std::mutex mu_;
  std::vector<HealthAlert> alerts_;
};

// Writes {"schema_version":1,"summary":{...},"alerts":[...]} to `path`
// from the process-wide HealthLog (the `<fig>.health.json` artefact).
void write_health_json(const std::string& path);

// Jensen-Shannon divergence (base 2, in [0, 1]) between two unnormalized
// non-negative weight vectors of equal length. Used by the marginal probes;
// unit-tested directly (identical marginals => 0, disjoint => 1).
double jensen_shannon(const std::vector<double>& p, const std::vector<double>& q);

}  // namespace gtv::obs
