// gtv::obs — span tracing with cross-party flow correlation.
//
// TraceSink writes one JSON object per line ("JSONL"), each a Chrome
// trace-event record with microsecond timestamps, so a capture loads
// directly into chrome://tracing / Perfetto after wrapping the lines in a
// JSON array (both tools also accept the newline-delimited form). Three
// record kinds are emitted:
//
//   - complete spans   {name, ph:"X", ts, dur, pid, tid}
//   - flow events      {name, ph:"s"|"f", id, ts, pid, tid} — one "s"
//     (start) on the sending party and one "f" (finish, bp:"e") on the
//     receiving party per wire transfer, sharing a monotonic flow id, so
//     Perfetto draws an arrow from sender to receiver.
//   - process metadata {ph:"M", name:"process_name", pid, args:{name}}
//     naming each party's row (declare_party).
//
// Parties map to trace pids: server = 0, client k = k + 1. The thread's
// current party (PartyScope) decides which row its spans land on; code
// outside any PartyScope emits on the driver pid (kDriverPid).
//
// The sink is opened from the GTV_TRACE environment variable
// (GTV_TRACE=/path/to/trace.jsonl) on first use, or programmatically via
// open(). While no sink is active and timing is disabled, a gated
// ScopedTimer is a no-op that never reads the clock.
//
// Shutdown: the singleton is intentionally leaked and the file is flushed
// by an atexit hook instead of a destructor. A destructor would race
// instrumentation that runs during static destruction (a ScopedTimer in
// another translation unit's teardown could emit into a half-destroyed
// sink). With the leak, late emits hit a still-alive object and are
// dropped cleanly once the atexit close has run.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace gtv::obs {

// Trace pid for code running outside any PartyScope (bench drivers, tests).
inline constexpr int kDriverPid = 99;

class TraceSink {
 public:
  static TraceSink& instance();

  bool active() const { return active_.load(std::memory_order_relaxed); }
  // Opens `path` for writing (truncates). Replaces any active sink.
  // Replays process_name metadata for every party declared so far.
  void open(const std::string& path);
  void close();

  // Names the Perfetto process row for `pid` (see party pid mapping above).
  // Remembered across open()/close() so late sinks still get the metadata.
  void declare_party(int pid, const std::string& name);

  // Emits one complete-span record on the calling thread's current party.
  // `ts_us` is microseconds since the process trace epoch (see now_us).
  void emit_complete(const char* name, std::uint64_t ts_us, std::uint64_t dur_us);

  // Emits one flow event: phase 's' (start) or 'f' (finish). The finish
  // record carries bp:"e" so viewers bind the arrow to the enclosing slice.
  void emit_flow(const char* name, std::uint64_t flow_id, char phase, int pid,
                 std::uint64_t ts_us);

  // Emits one process-scoped instant event (ph:"i", s:"p") on the calling
  // thread's current party. Used by gtv::obs::health to pin alerts onto the
  // timeline; `severity`/`value`/`threshold` ride in args.
  void emit_instant(const char* name, std::uint64_t ts_us, const char* severity,
                    double value, double threshold);

  // Monotonic process-wide flow id for correlating send/receive pairs.
  static std::uint64_t next_flow_id();

  // Monotonic microseconds since the process trace epoch.
  static std::uint64_t now_us();

  // The calling thread's current trace pid (kDriverPid outside PartyScope).
  static int current_party();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

 private:
  TraceSink();
  ~TraceSink() = default;  // never runs: instance is leaked (see file comment)

  void write_party_metadata_locked(int pid, const std::string& name);

  std::atomic<bool> active_{false};
  std::mutex mu_;
  std::ofstream out_;
  std::map<int, std::string> parties_;
};

// Scopes the calling thread to a party's trace row: spans emitted while a
// PartyScope is alive carry its pid. Nests; restores the previous pid.
class PartyScope {
 public:
  explicit PartyScope(int pid);
  ~PartyScope();

  PartyScope(const PartyScope&) = delete;
  PartyScope& operator=(const PartyScope&) = delete;

 private:
  int prev_;
};

// RAII span timer. On destruction it (a) accumulates the elapsed
// milliseconds into `*out_ms` when given, (b) records the duration into
// `hist` when given, and (c) emits a trace event when a sink is active.
//
// Gating: the timer arms itself when `always` is set or `out_ms` is given
// (the caller needs the number — e.g. RoundTelemetry), or when
// timing_enabled() / an active trace sink ask for instrumentation.
// Otherwise construction and destruction do no work at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, Histogram* hist = nullptr,
                       double* out_ms = nullptr, bool always = false);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  double* out_ms_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace gtv::obs
