// gtv::obs — span tracing.
//
// TraceSink writes one JSON object per line ("JSONL"), each a Chrome
// trace-event "complete" record {name, ph:"X", ts, dur, pid, tid} with
// microsecond timestamps, so a capture loads directly into
// chrome://tracing / Perfetto after wrapping the lines in a JSON array
// (both tools also accept the newline-delimited form).
//
// The sink is opened from the GTV_TRACE environment variable
// (GTV_TRACE=/path/to/trace.jsonl) on first use, or programmatically via
// open(). While no sink is active and timing is disabled, a gated
// ScopedTimer is a no-op that never reads the clock.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace gtv::obs {

class TraceSink {
 public:
  static TraceSink& instance();

  bool active() const { return active_.load(std::memory_order_relaxed); }
  // Opens `path` for writing (truncates). Replaces any active sink.
  void open(const std::string& path);
  void close();

  // Emits one complete-span record. `ts_us` is microseconds since the
  // process trace epoch (see now_us).
  void emit_complete(const char* name, std::uint64_t ts_us, std::uint64_t dur_us);

  // Monotonic microseconds since the process trace epoch.
  static std::uint64_t now_us();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

 private:
  TraceSink();
  ~TraceSink() { close(); }

  std::atomic<bool> active_{false};
  std::mutex mu_;
  std::ofstream out_;
};

// RAII span timer. On destruction it (a) accumulates the elapsed
// milliseconds into `*out_ms` when given, (b) records the duration into
// `hist` when given, and (c) emits a trace event when a sink is active.
//
// Gating: the timer arms itself when `always` is set or `out_ms` is given
// (the caller needs the number — e.g. RoundTelemetry), or when
// timing_enabled() / an active trace sink ask for instrumentation.
// Otherwise construction and destruction do no work at all.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, Histogram* hist = nullptr,
                       double* out_ms = nullptr, bool always = false);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  Histogram* hist_;
  double* out_ms_;
  std::uint64_t start_us_ = 0;
  bool active_;
};

}  // namespace gtv::obs
