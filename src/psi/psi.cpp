#include "psi/psi.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gtv::psi {

std::uint64_t salted_hash(const std::string& id, std::uint64_t salt) {
  // FNV-1a over the bytes, then SplitMix64 finalization keyed by the salt.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ salt;
  for (unsigned char c : id) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  h += 0x9e3779b97f4a7c15ULL + salt;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::vector<std::uint64_t> hash_intersection(const std::vector<Party>& parties,
                                             std::uint64_t salt) {
  if (parties.empty()) throw std::invalid_argument("psi: no parties");
  std::unordered_set<std::uint64_t> common;
  for (std::size_t p = 0; p < parties.size(); ++p) {
    std::unordered_set<std::uint64_t> hashes;
    hashes.reserve(parties[p].ids.size());
    for (const auto& id : parties[p].ids) {
      if (!hashes.insert(salted_hash(id, salt)).second) {
        throw std::invalid_argument("psi: duplicate identifier in party " + std::to_string(p));
      }
    }
    if (p == 0) {
      common = std::move(hashes);
    } else {
      std::unordered_set<std::uint64_t> kept;
      for (std::uint64_t h : common) {
        if (hashes.count(h) != 0) kept.insert(h);
      }
      common = std::move(kept);
    }
  }
  std::vector<std::uint64_t> sorted(common.begin(), common.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

AlignmentResult align_by_intersection(const std::vector<Party>& parties, std::uint64_t salt) {
  for (const auto& party : parties) {
    if (party.ids.size() != party.table.n_rows()) {
      throw std::invalid_argument("psi: ids/table row mismatch");
    }
  }
  const auto intersection = hash_intersection(parties, salt);
  if (intersection.empty()) throw std::invalid_argument("psi: empty intersection");

  AlignmentResult result;
  result.matched_rows = intersection.size();
  result.tables.reserve(parties.size());
  for (const auto& party : parties) {
    std::unordered_map<std::uint64_t, std::size_t> row_of_hash;
    row_of_hash.reserve(party.ids.size());
    for (std::size_t r = 0; r < party.ids.size(); ++r) {
      row_of_hash.emplace(salted_hash(party.ids[r], salt), r);
    }
    std::vector<std::size_t> rows;
    rows.reserve(intersection.size());
    for (std::uint64_t h : intersection) rows.push_back(row_of_hash.at(h));
    result.tables.push_back(party.table.gather_rows(rows));
  }
  return result;
}

}  // namespace gtv::psi
