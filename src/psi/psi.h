// Private-Set-Intersection-based record alignment.
//
// GTV (like other VFL systems) assumes the clients' rows are pre-aligned:
// row r in every shard belongs to the same individual. The paper defers
// this to PSI [Chen+17, Dong+13]. This module reproduces that
// preprocessing step with a salted-hash PSI in the semi-honest model:
//
//   1. all clients agree on a secret salt (like the shuffle seed, it is
//      negotiated among clients and never shared with the server),
//   2. each client publishes the salted hashes of its record identifiers,
//   3. everyone computes the hash intersection and sorts it (a canonical
//      order no single party controls),
//   4. each client reorders its local table to that canonical order.
//
// Identifiers outside the intersection never leave a client in plaintext;
// the salt prevents offline dictionary attacks by the server. A hardened
// deployment would use an OPRF-based PSI — the alignment *functionality*
// and interface are identical, which is what GTV depends on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"

namespace gtv::psi {

// 64-bit salted hash of a record identifier (SplitMix-style mixing).
std::uint64_t salted_hash(const std::string& id, std::uint64_t salt);

// One party's input to the alignment: a table whose row i belongs to the
// individual identified by ids[i]. Identifiers must be unique per party.
struct Party {
  std::vector<std::string> ids;
  data::Table table;
};

// Hashes every party's identifiers with the shared salt and returns the
// sorted intersection of the hash sets.
std::vector<std::uint64_t> hash_intersection(const std::vector<Party>& parties,
                                             std::uint64_t salt);

struct AlignmentResult {
  // Per-party tables restricted to the intersection, all in the same
  // (canonical hash-sorted) row order.
  std::vector<data::Table> tables;
  // How many records the intersection kept.
  std::size_t matched_rows = 0;
};

// Full alignment: every returned table has matched_rows rows and row r of
// every table belongs to the same individual. Throws if a party has
// duplicate identifiers or if the intersection is empty.
AlignmentResult align_by_intersection(const std::vector<Party>& parties, std::uint64_t salt);

}  // namespace gtv::psi
