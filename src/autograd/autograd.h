// Tape-based reverse-mode automatic differentiation over gtv::Tensor.
//
// Key property: every op's backward pass is itself expressed through the
// same Var op API, so calling grad(..., /*create_graph=*/true) produces
// gradients that are themselves differentiable. This enables the
// second-order gradients required by the WGAN-GP gradient penalty
// (d/dw of ||dD(x)/dx|| terms) without any special-casing.
//
// Usage:
//   Var w(Tensor::normal(...), /*requires_grad=*/true);
//   Var y = matmul(x, w);
//   backward(sum_all(y));            // accumulates into w.grad()
//   auto gx = grad(sum_all(y), {x}, /*create_graph=*/true)[0];  // graph-carrying
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace gtv::ag {

class Var;

namespace detail {

struct Node {
  Tensor value;
  bool requires_grad = false;
  std::vector<Var> parents;
  // Maps the upstream gradient to one gradient contribution per parent.
  // Null for leaves and constants.
  std::function<std::vector<Var>(const Var& grad_out)> backward;
  // Leaf gradient accumulator filled by gtv::ag::backward().
  Tensor grad;
  const char* op = "leaf";
};

}  // namespace detail

// A differentiable handle to a Tensor. Copies share the underlying node.
class Var {
 public:
  Var() = default;
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  std::size_t rows() const { return value().rows(); }
  std::size_t cols() const { return value().cols(); }
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }

  // Leaf gradient accessor; valid after backward(). Zero-shaped until then.
  const Tensor& grad() const;
  void zero_grad();
  // In-place update of a leaf's value (optimizer step). Must not be used on
  // interior graph nodes.
  void set_value(Tensor v);

  const std::shared_ptr<detail::Node>& node() const { return node_; }
  static Var from_node(std::shared_ptr<detail::Node> node);

 private:
  std::shared_ptr<detail::Node> node_;
};

// --- grad mode ---------------------------------------------------------------
// While disabled, ops do not record graph structure (outputs are constants).
bool grad_mode_enabled();
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};
class GradModeGuard {
 public:
  explicit GradModeGuard(bool enabled);
  ~GradModeGuard();
  GradModeGuard(const GradModeGuard&) = delete;
  GradModeGuard& operator=(const GradModeGuard&) = delete;

 private:
  bool previous_;
};

// --- core API ----------------------------------------------------------------
// Accumulates d(root)/d(leaf) into every reachable requires_grad leaf's
// .grad(). `root` must be a 1x1 scalar unless `grad_output` (same shape as
// root) is supplied — the explicit seed is how VFL split backprop resumes a
// backward pass from a gradient received over the wire.
void backward(const Var& root, const Var& grad_output = Var());

// Returns d(root)/d(input) for each input. `root` must be 1x1 unless
// grad_output is supplied. With create_graph=true the returned Vars carry
// graph structure and can be differentiated again. Inputs that the root
// does not depend on yield zero tensors.
std::vector<Var> grad(const Var& root, const std::vector<Var>& inputs,
                      bool create_graph = false, const Var& grad_output = Var());

// --- op library ----------------------------------------------------------------
Var constant(Tensor value);           // never requires grad
Var stop_gradient(const Var& a);      // value alias, detached

Var add(const Var& a, const Var& b);  // broadcasting as Tensor::operator+
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);  // Hadamard, broadcasting
Var div(const Var& a, const Var& b);
Var neg(const Var& a);
Var add_scalar(const Var& a, float s);
Var mul_scalar(const Var& a, float s);

Var matmul(const Var& a, const Var& b);
// a · b^T and a^T · b without materializing the transpose (tensor/gemm.h).
// Backward passes are themselves expressed through the matmul family, so
// both remain create_graph-differentiable (second-order WGAN-GP safe).
Var matmul_nt(const Var& a, const Var& b);
Var matmul_tn(const Var& a, const Var& b);
Var transpose(const Var& a);

Var exp(const Var& a);
Var log(const Var& a);  // caller ensures positivity (use log(x + eps))
Var sqrt(const Var& a);
Var square(const Var& a);
Var tanh(const Var& a);
Var sigmoid(const Var& a);
Var relu(const Var& a);
Var leaky_relu(const Var& a, float negative_slope);

Var sum_all(const Var& a);    // -> 1x1
Var sum_rows(const Var& a);   // NxC -> 1xC (column sums)
Var sum_cols(const Var& a);   // NxC -> Nx1 (row sums)
Var mean_all(const Var& a);   // -> 1x1
// Broadcasts 1x1 / 1xC / Nx1 up to rows x cols.
Var broadcast_to(const Var& a, std::size_t rows, std::size_t cols);

Var slice_cols(const Var& a, std::size_t c0, std::size_t c1);
Var pad_cols(const Var& a, std::size_t left, std::size_t right);
Var concat_cols(const std::vector<Var>& parts);
Var concat_rows(const std::vector<Var>& parts);
Var slice_rows(const Var& a, std::size_t r0, std::size_t r1);

// Numerically stable row-wise softmax / log-softmax (row max treated as a
// constant shift, which is exact for the softmax derivative).
Var softmax_rows(const Var& a);
Var log_softmax_rows(const Var& a);
// Row-wise L2 norm -> Nx1; epsilon keeps the sqrt differentiable at 0.
Var row_norms(const Var& a, float epsilon = 1e-12f);

// operator sugar
inline Var operator+(const Var& a, const Var& b) { return add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return mul(a, b); }
inline Var operator/(const Var& a, const Var& b) { return div(a, b); }
inline Var operator-(const Var& a) { return neg(a); }

}  // namespace gtv::ag
