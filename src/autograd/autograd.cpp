#include "autograd/autograd.h"

#include "obs/profiler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace gtv::ag {

namespace {

thread_local bool g_grad_mode = true;

using detail::Node;

Var make_op(Tensor value, std::vector<Var> parents, const char* op,
            std::function<std::vector<Var>(const Var&)> backward_fn) {
  if (obs::profiling_enabled()) {
    // Operand + result bytes, charged to the calling op's open scope.
    std::uint64_t elems = value.size();
    for (const auto& p : parents) elems += p.value().size();
    obs::OpScope::charge_bytes(elems * sizeof(float));
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool needs_grad = false;
  if (g_grad_mode) {
    for (const auto& p : parents) needs_grad = needs_grad || p.requires_grad();
  }
  node->requires_grad = needs_grad;
  if (needs_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward_fn);
    node->op = op;
  }
  return Var::from_node(std::move(node));
}

// Reduces a gradient back to the shape of the broadcast operand.
Var sum_to(const Var& g, std::size_t rows, std::size_t cols) {
  if (g.rows() == rows && g.cols() == cols) return g;
  if (rows == 1 && cols == 1) return sum_all(g);
  if (rows == 1 && cols == g.cols()) return sum_rows(g);
  if (cols == 1 && rows == g.rows()) return sum_cols(g);
  throw std::logic_error("autograd::sum_to: cannot reduce " + g.value().shape_str() + " to (" +
                         std::to_string(rows) + "x" + std::to_string(cols) + ")");
}

Var pad_rows(const Var& a, std::size_t top, std::size_t bottom);

}  // namespace

// --- Var ----------------------------------------------------------------------

Var::Var(Tensor value, bool requires_grad) : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

const Tensor& Var::value() const {
  if (!node_) throw std::logic_error("Var::value on undefined Var");
  return node_->value;
}

const Tensor& Var::grad() const {
  if (!node_) throw std::logic_error("Var::grad on undefined Var");
  return node_->grad;
}

void Var::zero_grad() {
  if (node_) node_->grad = Tensor(node_->value.rows(), node_->value.cols());
}

void Var::set_value(Tensor v) {
  if (!node_) throw std::logic_error("Var::set_value on undefined Var");
  if (node_->backward) {
    throw std::logic_error("Var::set_value on interior graph node (op=" +
                           std::string(node_->op) + ")");
  }
  node_->value = std::move(v);
}

Var Var::from_node(std::shared_ptr<detail::Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

// --- grad mode ------------------------------------------------------------------

bool grad_mode_enabled() { return g_grad_mode; }

NoGradGuard::NoGradGuard() : previous_(g_grad_mode) { g_grad_mode = false; }
NoGradGuard::~NoGradGuard() { g_grad_mode = previous_; }

GradModeGuard::GradModeGuard(bool enabled) : previous_(g_grad_mode) { g_grad_mode = enabled; }
GradModeGuard::~GradModeGuard() { g_grad_mode = previous_; }

// --- backward / grad --------------------------------------------------------------

namespace {

// Topological order (root last) over the requires_grad sub-graph.
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Iterative post-order DFS.
  struct Frame {
    Node* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent == 0 && visited.count(frame.node) != 0) {
      stack.pop_back();
      continue;
    }
    if (frame.next_parent < frame.node->parents.size()) {
      Node* parent = frame.node->parents[frame.next_parent].node().get();
      ++frame.next_parent;
      if (parent->requires_grad && visited.count(parent) == 0) {
        stack.push_back({parent, 0});
      }
      continue;
    }
    visited.insert(frame.node);
    order.push_back(frame.node);
    stack.pop_back();
  }
  return order;
}

std::unordered_map<Node*, Var> propagate(const Var& root, bool create_graph,
                                         const Var& grad_output) {
  Node* root_node = root.node().get();
  if (root_node == nullptr) throw std::logic_error("autograd: undefined root");
  if (!root_node->requires_grad) return {};

  Var seed;
  if (grad_output.defined()) {
    if (!grad_output.value().same_shape(root.value())) {
      throw std::invalid_argument("autograd: grad_output shape mismatch");
    }
    seed = grad_output;
  } else {
    if (root.rows() != 1 || root.cols() != 1) {
      throw std::invalid_argument("autograd: implicit backward requires a 1x1 root, got " +
                                  root.value().shape_str());
    }
    seed = Var(Tensor::ones(1, 1));
  }

  obs::OpScope prof("autograd.backward");
  std::vector<Node*> order = topo_order(root_node);
  std::unordered_map<Node*, Var> grads;
  grads.emplace(root_node, seed);

  GradModeGuard guard(create_graph);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    auto found = grads.find(node);
    if (found == grads.end()) continue;  // unreachable from root
    if (!node->backward) continue;       // leaf
    const Var upstream = found->second;
    std::vector<Var> contribs;
    {
      // Charged as "<op>.bwd" so each op's backward shares its forward's
      // label space in the profile; ops invoked inside the closure nest as
      // children and keep self times disjoint.
      obs::OpScope bwd(node->op, ".bwd");
      contribs = node->backward(upstream);
    }
    if (contribs.size() != node->parents.size()) {
      throw std::logic_error(std::string("autograd: op '") + node->op +
                             "' backward returned wrong arity");
    }
    for (std::size_t i = 0; i < node->parents.size(); ++i) {
      Node* parent = node->parents[i].node().get();
      if (!parent->requires_grad) continue;
      auto slot = grads.find(parent);
      if (slot == grads.end()) {
        grads.emplace(parent, contribs[i]);
      } else {
        slot->second = add(slot->second, contribs[i]);
      }
    }
  }
  return grads;
}

}  // namespace

void backward(const Var& root, const Var& grad_output) {
  auto grads = propagate(root, /*create_graph=*/false, grad_output);
  for (auto& [node, g] : grads) {
    if (node->backward) continue;  // interior node: gradient not retained
    if (!node->requires_grad) continue;
    if (node->grad.empty()) node->grad = Tensor(node->value.rows(), node->value.cols());
    node->grad += g.value();
  }
}

std::vector<Var> grad(const Var& root, const std::vector<Var>& inputs, bool create_graph,
                      const Var& grad_output) {
  auto grads = propagate(root, create_graph, grad_output);
  std::vector<Var> out;
  out.reserve(inputs.size());
  for (const auto& input : inputs) {
    auto it = grads.find(input.node().get());
    if (it != grads.end()) {
      out.push_back(it->second);
    } else {
      out.push_back(constant(Tensor(input.rows(), input.cols())));
    }
  }
  return out;
}

// --- ops ---------------------------------------------------------------------------

Var constant(Tensor value) { return Var(std::move(value), /*requires_grad=*/false); }

Var stop_gradient(const Var& a) { return constant(a.value()); }

Var add(const Var& a, const Var& b) {
  obs::OpScope prof("add");
  Tensor v = a.value() + b.value();
  const auto ar = a.rows(), ac = a.cols(), br = b.rows(), bc = b.cols();
  return make_op(std::move(v), {a, b}, "add", [ar, ac, br, bc](const Var& g) {
    return std::vector<Var>{sum_to(g, ar, ac), sum_to(g, br, bc)};
  });
}

Var sub(const Var& a, const Var& b) {
  obs::OpScope prof("sub");
  Tensor v = a.value() - b.value();
  const auto ar = a.rows(), ac = a.cols(), br = b.rows(), bc = b.cols();
  return make_op(std::move(v), {a, b}, "sub", [ar, ac, br, bc](const Var& g) {
    return std::vector<Var>{sum_to(g, ar, ac), sum_to(neg(g), br, bc)};
  });
}

Var mul(const Var& a, const Var& b) {
  obs::OpScope prof("mul");
  Tensor v = a.value() * b.value();
  return make_op(std::move(v), {a, b}, "mul", [a, b](const Var& g) {
    return std::vector<Var>{sum_to(mul(g, b), a.rows(), a.cols()),
                            sum_to(mul(g, a), b.rows(), b.cols())};
  });
}

Var div(const Var& a, const Var& b) {
  obs::OpScope prof("div");
  Tensor v = a.value() / b.value();
  return make_op(std::move(v), {a, b}, "div", [a, b](const Var& g) {
    Var ga = div(g, b);
    Var gb = neg(div(mul(g, a), mul(b, b)));
    return std::vector<Var>{sum_to(ga, a.rows(), a.cols()), sum_to(gb, b.rows(), b.cols())};
  });
}

Var neg(const Var& a) {
  obs::OpScope prof("neg");
  return make_op(-a.value(), {a}, "neg",
                 [](const Var& g) { return std::vector<Var>{neg(g)}; });
}

Var add_scalar(const Var& a, float s) {
  obs::OpScope prof("add_scalar");
  return make_op(a.value().add_scalar(s), {a}, "add_scalar",
                 [](const Var& g) { return std::vector<Var>{g}; });
}

Var mul_scalar(const Var& a, float s) {
  obs::OpScope prof("mul_scalar");
  return make_op(a.value().mul_scalar(s), {a}, "mul_scalar",
                 [s](const Var& g) { return std::vector<Var>{mul_scalar(g, s)}; });
}

Var matmul(const Var& a, const Var& b) {
  obs::OpScope prof("matmul");
  Tensor v = a.value().matmul(b.value());
  // Transpose-free backward: g·B^T and A^T·g go straight through the _nt/_tn
  // kernels instead of materializing transpose() copies of B and A — the
  // biggest allocation + memory-traffic source in every backward pass.
  return make_op(std::move(v), {a, b}, "matmul", [a, b](const Var& g) {
    return std::vector<Var>{matmul_nt(g, b), matmul_tn(a, g)};
  });
}

Var matmul_nt(const Var& a, const Var& b) {
  obs::OpScope prof("matmul_nt");
  Tensor v = a.value().matmul_nt(b.value());
  // C = A·B^T with A (m x k), B (n x k): dA = G·B, dB = G^T·A.
  return make_op(std::move(v), {a, b}, "matmul_nt", [a, b](const Var& g) {
    return std::vector<Var>{matmul(g, b), matmul_tn(g, a)};
  });
}

Var matmul_tn(const Var& a, const Var& b) {
  obs::OpScope prof("matmul_tn");
  Tensor v = a.value().matmul_tn(b.value());
  // C = A^T·B with A (k x m), B (k x n): dA = B·G^T, dB = A·G.
  return make_op(std::move(v), {a, b}, "matmul_tn", [a, b](const Var& g) {
    return std::vector<Var>{matmul_nt(b, g), matmul(a, g)};
  });
}

Var transpose(const Var& a) {
  obs::OpScope prof("transpose");
  return make_op(a.value().transpose(), {a}, "transpose",
                 [](const Var& g) { return std::vector<Var>{transpose(g)}; });
}

Var exp(const Var& a) {
  obs::OpScope prof("exp");
  Tensor v = a.value().map([](float x) { return std::exp(x); });
  return make_op(std::move(v), {a}, "exp", [a](const Var& g) {
    return std::vector<Var>{mul(g, exp(a))};
  });
}

Var log(const Var& a) {
  obs::OpScope prof("log");
  Tensor v = a.value().map([](float x) { return std::log(x); });
  return make_op(std::move(v), {a}, "log", [a](const Var& g) {
    return std::vector<Var>{div(g, a)};
  });
}

Var sqrt(const Var& a) {
  obs::OpScope prof("sqrt");
  Tensor v = a.value().map([](float x) { return std::sqrt(x); });
  return make_op(std::move(v), {a}, "sqrt", [a](const Var& g) {
    return std::vector<Var>{div(mul_scalar(g, 0.5f), sqrt(a))};
  });
}

Var square(const Var& a) {
  obs::OpScope prof("square");
  Tensor v = a.value().map([](float x) { return x * x; });
  return make_op(std::move(v), {a}, "square", [a](const Var& g) {
    return std::vector<Var>{mul(mul_scalar(g, 2.0f), a)};
  });
}

Var tanh(const Var& a) {
  obs::OpScope prof("tanh");
  Tensor v = a.value().map([](float x) { return std::tanh(x); });
  return make_op(std::move(v), {a}, "tanh", [a](const Var& g) {
    Var t = tanh(a);
    return std::vector<Var>{mul(g, sub(constant(Tensor::ones(1, 1)), mul(t, t)))};
  });
}

Var sigmoid(const Var& a) {
  obs::OpScope prof("sigmoid");
  Tensor v = a.value().map([](float x) { return 1.0f / (1.0f + std::exp(-x)); });
  return make_op(std::move(v), {a}, "sigmoid", [a](const Var& g) {
    Var s = sigmoid(a);
    return std::vector<Var>{mul(g, mul(s, sub(constant(Tensor::ones(1, 1)), s)))};
  });
}

Var relu(const Var& a) { return leaky_relu(a, 0.0f); }

Var leaky_relu(const Var& a, float negative_slope) {
  obs::OpScope prof("leaky_relu");
  Tensor v = a.value().map(
      [negative_slope](float x) { return x > 0.0f ? x : negative_slope * x; });
  // The mask is constant w.r.t. differentiation (d2/dx2 of leaky-relu is 0
  // almost everywhere), so second-order gradients through the mask are exact.
  Tensor mask = a.value().map(
      [negative_slope](float x) { return x > 0.0f ? 1.0f : negative_slope; });
  return make_op(std::move(v), {a}, "leaky_relu",
                 [mask = std::move(mask)](const Var& g) {
                   return std::vector<Var>{mul(g, constant(mask))};
                 });
}

Var sum_all(const Var& a) {
  obs::OpScope prof("sum_all");
  const auto rows = a.rows(), cols = a.cols();
  return make_op(Tensor::scalar(a.value().sum()), {a}, "sum_all",
                 [rows, cols](const Var& g) {
                   return std::vector<Var>{broadcast_to(g, rows, cols)};
                 });
}

Var sum_rows(const Var& a) {
  obs::OpScope prof("sum_rows");
  const auto rows = a.rows(), cols = a.cols();
  return make_op(a.value().sum_rows(), {a}, "sum_rows", [rows, cols](const Var& g) {
    return std::vector<Var>{broadcast_to(g, rows, cols)};
  });
}

Var sum_cols(const Var& a) {
  obs::OpScope prof("sum_cols");
  const auto rows = a.rows(), cols = a.cols();
  return make_op(a.value().sum_cols(), {a}, "sum_cols", [rows, cols](const Var& g) {
    return std::vector<Var>{broadcast_to(g, rows, cols)};
  });
}

Var mean_all(const Var& a) {
  const float inv = 1.0f / static_cast<float>(a.value().size());
  return mul_scalar(sum_all(a), inv);
}

Var broadcast_to(const Var& a, std::size_t rows, std::size_t cols) {
  obs::OpScope prof("broadcast_to");
  const auto ar = a.rows(), ac = a.cols();
  if (ar == rows && ac == cols) return a;
  Tensor v;
  if (ar == 1 && ac == 1) {
    v = Tensor::full(rows, cols, a.value()(0, 0));
  } else if (ar == 1 && ac == cols) {
    v = Tensor(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) v(r, c) = a.value()(0, c);
  } else if (ac == 1 && ar == rows) {
    v = Tensor(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t c = 0; c < cols; ++c) v(r, c) = a.value()(r, 0);
  } else {
    throw std::invalid_argument("autograd::broadcast_to: cannot broadcast " +
                                a.value().shape_str());
  }
  return make_op(std::move(v), {a}, "broadcast_to", [ar, ac](const Var& g) {
    return std::vector<Var>{sum_to(g, ar, ac)};
  });
}

Var slice_cols(const Var& a, std::size_t c0, std::size_t c1) {
  obs::OpScope prof("slice_cols");
  const std::size_t total = a.cols();
  return make_op(a.value().slice_cols(c0, c1), {a}, "slice_cols",
                 [c0, c1, total](const Var& g) {
                   return std::vector<Var>{pad_cols(g, c0, total - c1)};
                 });
}

Var pad_cols(const Var& a, std::size_t left, std::size_t right) {
  obs::OpScope prof("pad_cols");
  const std::size_t c0 = left, c1 = left + a.cols();
  return make_op(a.value().pad_cols(left, right), {a}, "pad_cols",
                 [c0, c1](const Var& g) {
                   return std::vector<Var>{slice_cols(g, c0, c1)};
                 });
}

namespace {

Var pad_rows(const Var& a, std::size_t top, std::size_t bottom) {
  obs::OpScope prof("pad_rows");
  Tensor v(top + a.rows() + bottom, a.cols());
  const Tensor& src = a.value();
  for (std::size_t r = 0; r < src.rows(); ++r)
    for (std::size_t c = 0; c < src.cols(); ++c) v(top + r, c) = src(r, c);
  const std::size_t r0 = top, r1 = top + a.rows();
  return make_op(std::move(v), {a}, "pad_rows", [r0, r1](const Var& g) {
    return std::vector<Var>{slice_rows(g, r0, r1)};
  });
}

}  // namespace

Var slice_rows(const Var& a, std::size_t r0, std::size_t r1) {
  obs::OpScope prof("slice_rows");
  const std::size_t total = a.rows();
  return make_op(a.value().slice_rows(r0, r1), {a}, "slice_rows",
                 [r0, r1, total](const Var& g) {
                   return std::vector<Var>{pad_rows(g, r0, total - r1)};
                 });
}

Var concat_cols(const std::vector<Var>& parts) {
  obs::OpScope prof("concat_cols");
  if (parts.empty()) throw std::invalid_argument("autograd::concat_cols: empty");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<std::size_t> offsets;
  std::size_t offset = 0;
  for (const auto& p : parts) {
    values.push_back(p.value());
    offsets.push_back(offset);
    offset += p.cols();
  }
  offsets.push_back(offset);
  return make_op(Tensor::concat_cols(values), parts, "concat_cols",
                 [offsets](const Var& g) {
                   std::vector<Var> out;
                   out.reserve(offsets.size() - 1);
                   for (std::size_t i = 0; i + 1 < offsets.size(); ++i)
                     out.push_back(slice_cols(g, offsets[i], offsets[i + 1]));
                   return out;
                 });
}

Var concat_rows(const std::vector<Var>& parts) {
  obs::OpScope prof("concat_rows");
  if (parts.empty()) throw std::invalid_argument("autograd::concat_rows: empty");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  std::vector<std::size_t> offsets;
  std::size_t offset = 0;
  for (const auto& p : parts) {
    values.push_back(p.value());
    offsets.push_back(offset);
    offset += p.rows();
  }
  offsets.push_back(offset);
  return make_op(Tensor::concat_rows(values), parts, "concat_rows",
                 [offsets](const Var& g) {
                   std::vector<Var> out;
                   out.reserve(offsets.size() - 1);
                   for (std::size_t i = 0; i + 1 < offsets.size(); ++i)
                     out.push_back(slice_rows(g, offsets[i], offsets[i + 1]));
                   return out;
                 });
}

namespace {

Tensor row_max(const Tensor& t) {
  Tensor out(t.rows(), 1);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    float best = t(r, 0);
    for (std::size_t c = 1; c < t.cols(); ++c) best = std::max(best, t(r, c));
    out(r, 0) = best;
  }
  return out;
}

}  // namespace

Var softmax_rows(const Var& a) {
  obs::OpScope prof("softmax_rows");
  // Shifting by the (constant) row max is exact: softmax is shift-invariant.
  Var shifted = sub(a, constant(row_max(a.value())));
  Var e = exp(shifted);
  Var s = sum_cols(e);
  return div(e, s);
}

Var log_softmax_rows(const Var& a) {
  obs::OpScope prof("log_softmax_rows");
  Var shifted = sub(a, constant(row_max(a.value())));
  Var s = sum_cols(exp(shifted));
  return sub(shifted, log(s));
}

Var row_norms(const Var& a, float epsilon) {
  obs::OpScope prof("row_norms");
  return sqrt(add_scalar(sum_cols(square(a)), epsilon));
}

}  // namespace gtv::ag
