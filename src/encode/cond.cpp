#include "encode/cond.h"

#include <cmath>
#include <stdexcept>

namespace gtv::encode {

ConditionalSampler::ConditionalSampler(const TableEncoder& encoder, const data::Table& data)
    : encoder_(&encoder), n_rows_(data.n_rows()), encoded_width_(encoder.total_width()) {
  if (n_rows_ == 0) throw std::invalid_argument("ConditionalSampler: empty table");
  const auto& discrete = encoder.discrete_spans();
  cv_offsets_.reserve(discrete.size());
  for (const auto& span : discrete) {
    cv_offsets_.push_back(cv_width_);
    cv_width_ += span.cardinality;

    std::vector<std::vector<std::size_t>> buckets(span.cardinality);
    const auto& column = data.column(span.source_column);
    for (std::size_t r = 0; r < column.size(); ++r) {
      buckets.at(static_cast<std::size_t>(column[r])).push_back(r);
    }
    std::vector<double> logf(span.cardinality), rawf(span.cardinality);
    for (std::size_t k = 0; k < span.cardinality; ++k) {
      logf[k] = std::log(1.0 + static_cast<double>(buckets[k].size()));
      rawf[k] = static_cast<double>(buckets[k].size());
    }
    rows_by_category_.push_back(std::move(buckets));
    log_freq_.push_back(std::move(logf));
    raw_freq_.push_back(std::move(rawf));
  }
}

ConditionalSampler::Sample ConditionalSampler::sample_train(std::size_t batch, Rng& rng) const {
  Sample sample;
  sample.rows.reserve(batch);
  if (!has_discrete()) {
    sample.cv = Tensor(batch, 0);
    for (std::size_t b = 0; b < batch; ++b) sample.rows.push_back(rng.uniform_index(n_rows_));
    return sample;
  }
  sample.cv = Tensor(batch, cv_width_);
  sample.span.reserve(batch);
  sample.category.reserve(batch);
  const std::size_t n_spans = rows_by_category_.size();
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t span = rng.uniform_index(n_spans);
    // Retry on empty categories (log(1+0)=0 weight already excludes them
    // unless every category is empty, which cannot happen for a fitted col).
    const std::size_t category = rng.categorical(log_freq_[span]);
    const auto& bucket = rows_by_category_[span][category];
    if (bucket.empty()) {
      throw std::logic_error("ConditionalSampler: sampled an empty category bucket");
    }
    sample.cv(b, cv_offsets_[span] + category) = 1.0f;
    sample.rows.push_back(bucket[rng.uniform_index(bucket.size())]);
    sample.span.push_back(span);
    sample.category.push_back(category);
  }
  return sample;
}

Tensor ConditionalSampler::sample_original(std::size_t batch, Rng& rng) const {
  if (!has_discrete()) return Tensor(batch, 0);
  Tensor cv(batch, cv_width_);
  const std::size_t n_spans = rows_by_category_.size();
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t span = rng.uniform_index(n_spans);
    const std::size_t category = rng.categorical(raw_freq_[span]);
    cv(b, cv_offsets_[span] + category) = 1.0f;
  }
  return cv;
}

Tensor ConditionalSampler::target_mask(const Sample& sample) const {
  Tensor mask(sample.rows.size(), encoded_width_);
  const auto& discrete = encoder_->discrete_spans();
  for (std::size_t b = 0; b < sample.span.size(); ++b) {
    const auto& span = discrete.at(sample.span[b]);
    mask(b, span.span_offset + sample.category[b]) = 1.0f;
  }
  return mask;
}

}  // namespace gtv::encode
