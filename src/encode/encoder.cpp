#include "encode/encoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/bytes.h"

namespace gtv::encode {

using data::ColumnType;

void TableEncoder::fit(const data::Table& table, const EncoderOptions& options, Rng& rng) {
  if (table.n_rows() == 0) throw std::invalid_argument("TableEncoder::fit: empty table");
  schema_ = data::Table(table.schema());
  codecs_.clear();
  spans_.clear();
  column_spans_.assign(table.n_cols(), {});
  discrete_spans_.clear();
  total_width_ = 0;

  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto& spec = table.spec(c);
    ColumnCodec codec;
    codec.type = spec.type;
    codec.normalization_factor = options.normalization_factor;
    switch (spec.type) {
      case ColumnType::kCategorical: {
        codec.cardinality = spec.cardinality();
        Span onehot{total_width_, codec.cardinality, Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(onehot);
        total_width_ += onehot.width;

        DiscreteSpan ds;
        ds.source_column = c;
        ds.span_offset = onehot.offset;
        ds.cardinality = codec.cardinality;
        ds.frequencies = table.class_counts(c);
        discrete_spans_.push_back(std::move(ds));
        break;
      }
      case ColumnType::kContinuous: {
        codec.gmm.fit(table.column(c), options.gmm, rng);
        Span alpha{total_width_, 1, Activation::kTanh, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(alpha);
        total_width_ += 1;
        Span modes{total_width_, codec.gmm.n_modes(), Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(modes);
        total_width_ += modes.width;
        break;
      }
      case ColumnType::kMixed: {
        codec.special_values = spec.special_values;
        // Fit the GMM on the non-special portion only.
        std::vector<double> continuous_part;
        for (double v : table.column(c)) {
          const bool special =
              std::any_of(codec.special_values.begin(), codec.special_values.end(),
                          [v](double s) { return v == s; });
          if (!special) continuous_part.push_back(v);
        }
        if (continuous_part.empty()) {
          // Column is all special values; treat the first special as mean.
          continuous_part.push_back(codec.special_values.empty() ? 0.0
                                                                 : codec.special_values[0]);
        }
        codec.gmm.fit(continuous_part, options.gmm, rng);
        Span alpha{total_width_, 1, Activation::kTanh, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(alpha);
        total_width_ += 1;
        Span modes{total_width_, codec.special_values.size() + codec.gmm.n_modes(),
                   Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(modes);
        total_width_ += modes.width;
        break;
      }
    }
    codecs_.push_back(std::move(codec));
  }
}

Tensor TableEncoder::encode(const data::Table& table, Rng& rng) const {
  if (!table.same_schema(schema_)) {
    throw std::invalid_argument("TableEncoder::encode: schema mismatch with fitted table");
  }
  Tensor out(table.n_rows(), total_width_);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto& codec = codecs_[c];
    const auto& span_ids = column_spans_[c];
    for (std::size_t r = 0; r < table.n_rows(); ++r) {
      const double v = table.cell(r, c);
      switch (codec.type) {
        case ColumnType::kCategorical: {
          const Span& onehot = spans_[span_ids[0]];
          out(r, onehot.offset + static_cast<std::size_t>(v)) = 1.0f;
          break;
        }
        case ColumnType::kContinuous: {
          const Span& alpha = spans_[span_ids[0]];
          const Span& modes = spans_[span_ids[1]];
          const auto resp = codec.gmm.responsibilities(v);
          const std::size_t mode = rng.categorical(resp);
          const double normalized =
              (v - codec.gmm.means()[mode]) /
              (codec.normalization_factor * codec.gmm.stds()[mode]);
          out(r, alpha.offset) = static_cast<float>(std::clamp(normalized, -1.0, 1.0));
          out(r, modes.offset + mode) = 1.0f;
          break;
        }
        case ColumnType::kMixed: {
          const Span& alpha = spans_[span_ids[0]];
          const Span& modes = spans_[span_ids[1]];
          const std::size_t n_special = codec.special_values.size();
          std::size_t special_idx = n_special;
          for (std::size_t s = 0; s < n_special; ++s) {
            if (v == codec.special_values[s]) {
              special_idx = s;
              break;
            }
          }
          if (special_idx < n_special) {
            // Point-mass mode: alpha pinned to 0 as in CTAB-GAN.
            out(r, alpha.offset) = 0.0f;
            out(r, modes.offset + special_idx) = 1.0f;
          } else {
            const auto resp = codec.gmm.responsibilities(v);
            const std::size_t mode = rng.categorical(resp);
            const double normalized =
                (v - codec.gmm.means()[mode]) /
                (codec.normalization_factor * codec.gmm.stds()[mode]);
            out(r, alpha.offset) = static_cast<float>(std::clamp(normalized, -1.0, 1.0));
            out(r, modes.offset + n_special + mode) = 1.0f;
          }
          break;
        }
      }
    }
  }
  return out;
}

data::Table TableEncoder::decode(const Tensor& encoded) const {
  if (encoded.cols() != total_width_) {
    throw std::invalid_argument("TableEncoder::decode: width " +
                                std::to_string(encoded.cols()) + " != fitted " +
                                std::to_string(total_width_));
  }
  data::Table out(schema_.schema());
  out.reserve(encoded.rows());
  std::vector<double> row(schema_.n_cols());
  for (std::size_t r = 0; r < encoded.rows(); ++r) {
    for (std::size_t c = 0; c < schema_.n_cols(); ++c) {
      const auto& codec = codecs_[c];
      const auto& span_ids = column_spans_[c];
      auto argmax_span = [&](const Span& span) {
        std::size_t best = 0;
        float best_v = encoded(r, span.offset);
        for (std::size_t k = 1; k < span.width; ++k) {
          if (encoded(r, span.offset + k) > best_v) {
            best_v = encoded(r, span.offset + k);
            best = k;
          }
        }
        return best;
      };
      switch (codec.type) {
        case ColumnType::kCategorical: {
          row[c] = static_cast<double>(argmax_span(spans_[span_ids[0]]));
          break;
        }
        case ColumnType::kContinuous: {
          const Span& alpha_span = spans_[span_ids[0]];
          const std::size_t mode = argmax_span(spans_[span_ids[1]]);
          const double alpha =
              std::clamp<double>(encoded(r, alpha_span.offset), -1.0, 1.0);
          row[c] = alpha * codec.normalization_factor * codec.gmm.stds()[mode] +
                   codec.gmm.means()[mode];
          break;
        }
        case ColumnType::kMixed: {
          const Span& alpha_span = spans_[span_ids[0]];
          const std::size_t mode = argmax_span(spans_[span_ids[1]]);
          const std::size_t n_special = codec.special_values.size();
          if (mode < n_special) {
            row[c] = codec.special_values[mode];
          } else {
            const double alpha =
                std::clamp<double>(encoded(r, alpha_span.offset), -1.0, 1.0);
            const std::size_t g = mode - n_special;
            row[c] = alpha * codec.normalization_factor * codec.gmm.stds()[g] +
                     codec.gmm.means()[g];
          }
          break;
        }
      }
    }
    out.append_row(row);
  }
  return out;
}

namespace {

constexpr std::uint32_t kEncoderMagic = 0x45565447;  // "GTVE"
constexpr std::uint32_t kEncoderVersion = 1;
// Sanity bound on every element count in the blob; real tables are far
// smaller and this keeps a corrupt length from driving a huge allocation.
constexpr std::uint64_t kMaxEncoderItems = 1ull << 24;

std::uint64_t checked_count(bytes::Reader& r, const char* what) {
  const std::uint64_t n = r.u64(what);
  if (n > kMaxEncoderItems) {
    throw std::runtime_error(std::string("TableEncoder::deserialize: implausible count (") +
                             what + ")");
  }
  return n;
}

void put_doubles(std::vector<std::uint8_t>& out, const std::vector<double>& values) {
  bytes::put_u64(out, values.size());
  for (double v : values) bytes::put_f64(out, v);
}

std::vector<double> read_doubles(bytes::Reader& r, const char* what) {
  const std::uint64_t n = checked_count(r, what);
  std::vector<double> values(static_cast<std::size_t>(n));
  for (auto& v : values) v = r.f64(what);
  return values;
}

}  // namespace

void TableEncoder::serialize(std::vector<std::uint8_t>& out) const {
  bytes::put_u32(out, kEncoderMagic);
  bytes::put_u32(out, kEncoderVersion);
  // Schema (zero-row table: only the column specs matter).
  bytes::put_u64(out, schema_.n_cols());
  for (const auto& spec : schema_.schema()) {
    bytes::put_string(out, spec.name);
    bytes::put_u32(out, static_cast<std::uint32_t>(spec.type));
    bytes::put_u64(out, spec.categories.size());
    for (const auto& cat : spec.categories) bytes::put_string(out, cat);
    put_doubles(out, spec.special_values);
  }
  // Per-column codecs.
  bytes::put_u64(out, codecs_.size());
  for (const auto& codec : codecs_) {
    bytes::put_u32(out, static_cast<std::uint32_t>(codec.type));
    bytes::put_u64(out, codec.gmm.n_modes());
    for (double v : codec.gmm.weights()) bytes::put_f64(out, v);
    for (double v : codec.gmm.means()) bytes::put_f64(out, v);
    for (double v : codec.gmm.stds()) bytes::put_f64(out, v);
    put_doubles(out, codec.special_values);
    bytes::put_u64(out, codec.cardinality);
    bytes::put_f64(out, codec.normalization_factor);
  }
  // Span layout.
  bytes::put_u64(out, spans_.size());
  for (const auto& span : spans_) {
    bytes::put_u64(out, span.offset);
    bytes::put_u64(out, span.width);
    bytes::put_u32(out, static_cast<std::uint32_t>(span.activation));
    bytes::put_u64(out, span.source_column);
  }
  bytes::put_u64(out, column_spans_.size());
  for (const auto& ids : column_spans_) {
    bytes::put_u64(out, ids.size());
    for (std::size_t id : ids) bytes::put_u64(out, id);
  }
  // Conditional-vector metadata.
  bytes::put_u64(out, discrete_spans_.size());
  for (const auto& ds : discrete_spans_) {
    bytes::put_u64(out, ds.source_column);
    bytes::put_u64(out, ds.span_offset);
    bytes::put_u64(out, ds.cardinality);
    bytes::put_u64(out, ds.frequencies.size());
    for (std::size_t f : ds.frequencies) bytes::put_u64(out, f);
  }
  bytes::put_u64(out, total_width_);
}

TableEncoder TableEncoder::deserialize(const std::uint8_t* data, std::size_t size,
                                       std::size_t& offset) {
  bytes::Reader r(data, size, "TableEncoder::deserialize", offset);
  if (r.u32("magic") != kEncoderMagic) {
    throw std::runtime_error("TableEncoder::deserialize: bad magic");
  }
  if (r.u32("version") != kEncoderVersion) {
    throw std::runtime_error("TableEncoder::deserialize: unsupported version");
  }
  TableEncoder enc;
  const std::uint64_t n_cols = checked_count(r, "schema columns");
  std::vector<data::ColumnSpec> schema;
  schema.reserve(static_cast<std::size_t>(n_cols));
  for (std::uint64_t c = 0; c < n_cols; ++c) {
    data::ColumnSpec spec;
    spec.name = r.str("column name");
    const std::uint32_t type = r.u32("column type");
    if (type > 2) throw std::runtime_error("TableEncoder::deserialize: bad column type");
    spec.type = static_cast<ColumnType>(type);
    const std::uint64_t n_cats = checked_count(r, "categories");
    spec.categories.reserve(static_cast<std::size_t>(n_cats));
    for (std::uint64_t i = 0; i < n_cats; ++i) spec.categories.push_back(r.str("category"));
    spec.special_values = read_doubles(r, "schema special values");
    schema.push_back(std::move(spec));
  }
  enc.schema_ = data::Table(std::move(schema));
  const std::uint64_t n_codecs = checked_count(r, "codecs");
  for (std::uint64_t c = 0; c < n_codecs; ++c) {
    ColumnCodec codec;
    const std::uint32_t type = r.u32("codec type");
    if (type > 2) throw std::runtime_error("TableEncoder::deserialize: bad codec type");
    codec.type = static_cast<ColumnType>(type);
    const std::uint64_t n_modes = checked_count(r, "gmm modes");
    if (n_modes > 0) {
      std::vector<double> weights(static_cast<std::size_t>(n_modes));
      std::vector<double> means(static_cast<std::size_t>(n_modes));
      std::vector<double> stds(static_cast<std::size_t>(n_modes));
      for (auto& v : weights) v = r.f64("gmm weight");
      for (auto& v : means) v = r.f64("gmm mean");
      for (auto& v : stds) v = r.f64("gmm std");
      codec.gmm = GaussianMixture1D::from_components(std::move(weights), std::move(means),
                                                     std::move(stds));
    }
    codec.special_values = read_doubles(r, "codec special values");
    codec.cardinality = static_cast<std::size_t>(r.u64("cardinality"));
    codec.normalization_factor = r.f64("normalization factor");
    enc.codecs_.push_back(std::move(codec));
  }
  const std::uint64_t n_spans = checked_count(r, "spans");
  for (std::uint64_t i = 0; i < n_spans; ++i) {
    Span span;
    span.offset = static_cast<std::size_t>(r.u64("span offset"));
    span.width = static_cast<std::size_t>(r.u64("span width"));
    const std::uint32_t act = r.u32("span activation");
    if (act > 1) throw std::runtime_error("TableEncoder::deserialize: bad activation");
    span.activation = static_cast<Activation>(act);
    span.source_column = static_cast<std::size_t>(r.u64("span source column"));
    enc.spans_.push_back(span);
  }
  const std::uint64_t n_col_spans = checked_count(r, "column spans");
  for (std::uint64_t i = 0; i < n_col_spans; ++i) {
    const std::uint64_t n_ids = checked_count(r, "column span ids");
    std::vector<std::size_t> ids;
    ids.reserve(static_cast<std::size_t>(n_ids));
    for (std::uint64_t k = 0; k < n_ids; ++k) {
      const std::uint64_t id = r.u64("span id");
      if (id >= enc.spans_.size()) {
        throw std::runtime_error("TableEncoder::deserialize: span id out of range");
      }
      ids.push_back(static_cast<std::size_t>(id));
    }
    enc.column_spans_.push_back(std::move(ids));
  }
  const std::uint64_t n_discrete = checked_count(r, "discrete spans");
  for (std::uint64_t i = 0; i < n_discrete; ++i) {
    DiscreteSpan ds;
    ds.source_column = static_cast<std::size_t>(r.u64("discrete source column"));
    ds.span_offset = static_cast<std::size_t>(r.u64("discrete span offset"));
    ds.cardinality = static_cast<std::size_t>(r.u64("discrete cardinality"));
    const std::uint64_t n_freq = checked_count(r, "discrete frequencies");
    if (n_freq != ds.cardinality) {
      throw std::runtime_error("TableEncoder::deserialize: frequency count mismatch");
    }
    ds.frequencies.reserve(static_cast<std::size_t>(n_freq));
    for (std::uint64_t k = 0; k < n_freq; ++k) {
      ds.frequencies.push_back(static_cast<std::size_t>(r.u64("frequency")));
    }
    enc.discrete_spans_.push_back(std::move(ds));
  }
  enc.total_width_ = static_cast<std::size_t>(r.u64("total width"));
  if (enc.codecs_.size() != enc.schema_.n_cols() ||
      enc.column_spans_.size() != enc.schema_.n_cols()) {
    throw std::runtime_error("TableEncoder::deserialize: inconsistent column counts");
  }
  offset = r.offset;
  return enc;
}

}  // namespace gtv::encode
