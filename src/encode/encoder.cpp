#include "encode/encoder.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gtv::encode {

using data::ColumnType;

void TableEncoder::fit(const data::Table& table, const EncoderOptions& options, Rng& rng) {
  if (table.n_rows() == 0) throw std::invalid_argument("TableEncoder::fit: empty table");
  schema_ = data::Table(table.schema());
  codecs_.clear();
  spans_.clear();
  column_spans_.assign(table.n_cols(), {});
  discrete_spans_.clear();
  total_width_ = 0;

  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto& spec = table.spec(c);
    ColumnCodec codec;
    codec.type = spec.type;
    codec.normalization_factor = options.normalization_factor;
    switch (spec.type) {
      case ColumnType::kCategorical: {
        codec.cardinality = spec.cardinality();
        Span onehot{total_width_, codec.cardinality, Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(onehot);
        total_width_ += onehot.width;

        DiscreteSpan ds;
        ds.source_column = c;
        ds.span_offset = onehot.offset;
        ds.cardinality = codec.cardinality;
        ds.frequencies = table.class_counts(c);
        discrete_spans_.push_back(std::move(ds));
        break;
      }
      case ColumnType::kContinuous: {
        codec.gmm.fit(table.column(c), options.gmm, rng);
        Span alpha{total_width_, 1, Activation::kTanh, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(alpha);
        total_width_ += 1;
        Span modes{total_width_, codec.gmm.n_modes(), Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(modes);
        total_width_ += modes.width;
        break;
      }
      case ColumnType::kMixed: {
        codec.special_values = spec.special_values;
        // Fit the GMM on the non-special portion only.
        std::vector<double> continuous_part;
        for (double v : table.column(c)) {
          const bool special =
              std::any_of(codec.special_values.begin(), codec.special_values.end(),
                          [v](double s) { return v == s; });
          if (!special) continuous_part.push_back(v);
        }
        if (continuous_part.empty()) {
          // Column is all special values; treat the first special as mean.
          continuous_part.push_back(codec.special_values.empty() ? 0.0
                                                                 : codec.special_values[0]);
        }
        codec.gmm.fit(continuous_part, options.gmm, rng);
        Span alpha{total_width_, 1, Activation::kTanh, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(alpha);
        total_width_ += 1;
        Span modes{total_width_, codec.special_values.size() + codec.gmm.n_modes(),
                   Activation::kSoftmax, c};
        column_spans_[c].push_back(spans_.size());
        spans_.push_back(modes);
        total_width_ += modes.width;
        break;
      }
    }
    codecs_.push_back(std::move(codec));
  }
}

Tensor TableEncoder::encode(const data::Table& table, Rng& rng) const {
  if (!table.same_schema(schema_)) {
    throw std::invalid_argument("TableEncoder::encode: schema mismatch with fitted table");
  }
  Tensor out(table.n_rows(), total_width_);
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto& codec = codecs_[c];
    const auto& span_ids = column_spans_[c];
    for (std::size_t r = 0; r < table.n_rows(); ++r) {
      const double v = table.cell(r, c);
      switch (codec.type) {
        case ColumnType::kCategorical: {
          const Span& onehot = spans_[span_ids[0]];
          out(r, onehot.offset + static_cast<std::size_t>(v)) = 1.0f;
          break;
        }
        case ColumnType::kContinuous: {
          const Span& alpha = spans_[span_ids[0]];
          const Span& modes = spans_[span_ids[1]];
          const auto resp = codec.gmm.responsibilities(v);
          const std::size_t mode = rng.categorical(resp);
          const double normalized =
              (v - codec.gmm.means()[mode]) /
              (codec.normalization_factor * codec.gmm.stds()[mode]);
          out(r, alpha.offset) = static_cast<float>(std::clamp(normalized, -1.0, 1.0));
          out(r, modes.offset + mode) = 1.0f;
          break;
        }
        case ColumnType::kMixed: {
          const Span& alpha = spans_[span_ids[0]];
          const Span& modes = spans_[span_ids[1]];
          const std::size_t n_special = codec.special_values.size();
          std::size_t special_idx = n_special;
          for (std::size_t s = 0; s < n_special; ++s) {
            if (v == codec.special_values[s]) {
              special_idx = s;
              break;
            }
          }
          if (special_idx < n_special) {
            // Point-mass mode: alpha pinned to 0 as in CTAB-GAN.
            out(r, alpha.offset) = 0.0f;
            out(r, modes.offset + special_idx) = 1.0f;
          } else {
            const auto resp = codec.gmm.responsibilities(v);
            const std::size_t mode = rng.categorical(resp);
            const double normalized =
                (v - codec.gmm.means()[mode]) /
                (codec.normalization_factor * codec.gmm.stds()[mode]);
            out(r, alpha.offset) = static_cast<float>(std::clamp(normalized, -1.0, 1.0));
            out(r, modes.offset + n_special + mode) = 1.0f;
          }
          break;
        }
      }
    }
  }
  return out;
}

data::Table TableEncoder::decode(const Tensor& encoded) const {
  if (encoded.cols() != total_width_) {
    throw std::invalid_argument("TableEncoder::decode: width " +
                                std::to_string(encoded.cols()) + " != fitted " +
                                std::to_string(total_width_));
  }
  data::Table out(schema_.schema());
  out.reserve(encoded.rows());
  std::vector<double> row(schema_.n_cols());
  for (std::size_t r = 0; r < encoded.rows(); ++r) {
    for (std::size_t c = 0; c < schema_.n_cols(); ++c) {
      const auto& codec = codecs_[c];
      const auto& span_ids = column_spans_[c];
      auto argmax_span = [&](const Span& span) {
        std::size_t best = 0;
        float best_v = encoded(r, span.offset);
        for (std::size_t k = 1; k < span.width; ++k) {
          if (encoded(r, span.offset + k) > best_v) {
            best_v = encoded(r, span.offset + k);
            best = k;
          }
        }
        return best;
      };
      switch (codec.type) {
        case ColumnType::kCategorical: {
          row[c] = static_cast<double>(argmax_span(spans_[span_ids[0]]));
          break;
        }
        case ColumnType::kContinuous: {
          const Span& alpha_span = spans_[span_ids[0]];
          const std::size_t mode = argmax_span(spans_[span_ids[1]]);
          const double alpha =
              std::clamp<double>(encoded(r, alpha_span.offset), -1.0, 1.0);
          row[c] = alpha * codec.normalization_factor * codec.gmm.stds()[mode] +
                   codec.gmm.means()[mode];
          break;
        }
        case ColumnType::kMixed: {
          const Span& alpha_span = spans_[span_ids[0]];
          const std::size_t mode = argmax_span(spans_[span_ids[1]]);
          const std::size_t n_special = codec.special_values.size();
          if (mode < n_special) {
            row[c] = codec.special_values[mode];
          } else {
            const double alpha =
                std::clamp<double>(encoded(r, alpha_span.offset), -1.0, 1.0);
            const std::size_t g = mode - n_special;
            row[c] = alpha * codec.normalization_factor * codec.gmm.stds()[g] +
                     codec.gmm.means()[g];
          }
          break;
        }
      }
    }
    out.append_row(row);
  }
  return out;
}

}  // namespace gtv::encode
