// 1-D Gaussian mixture fitted with EM, used by the mode-specific
// normalization of CT-GAN (the "VGM" encoder): each continuous column is
// modeled as a mixture; a value is encoded as its mode id plus a scalar
// normalized within that mode.
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/rng.h"

namespace gtv::encode {

struct GmmOptions {
  std::size_t max_modes = 10;
  std::size_t max_iterations = 100;
  double tolerance = 1e-5;
  // Modes whose mixture weight falls below this are dropped after fitting
  // (CT-GAN keeps only "significant" modes).
  double min_weight = 0.005;
  double min_std = 1e-4;
};

class GaussianMixture1D {
 public:
  // Fits by EM with k-means++-style initialization drawn from `rng`.
  // `values` must be non-empty.
  void fit(const std::vector<double>& values, const GmmOptions& options, Rng& rng);

  // Rebuilds a fitted mixture from stored components (checkpoint restore).
  // All three vectors must have the same length; stds must be positive.
  static GaussianMixture1D from_components(std::vector<double> weights,
                                           std::vector<double> means,
                                           std::vector<double> stds);

  std::size_t n_modes() const { return means_.size(); }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stds() const { return stds_; }

  // Posterior P(mode | value), normalized.
  std::vector<double> responsibilities(double value) const;
  // Mode with the highest posterior.
  std::size_t most_likely_mode(double value) const;
  // Average log-likelihood of the data under the fitted mixture.
  double log_likelihood(const std::vector<double>& values) const;

 private:
  std::vector<double> weights_;
  std::vector<double> means_;
  std::vector<double> stds_;
};

}  // namespace gtv::encode
