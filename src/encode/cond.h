// Conditional-vector (CV) machinery, following CT-GAN's
// "training-by-sampling":
//
//   - one discrete (categorical) column is chosen uniformly at random,
//   - a category is chosen with probability proportional to log(1+freq),
//   - the CV is a one-hot over the concatenated category lists of all
//     discrete columns,
//   - a matching real row (whose chosen column equals the chosen category)
//     is sampled uniformly for discriminator training.
//
// In GTV the same machinery runs per client: each client builds CVs over
// its own categorical columns, and the server selects which client's CV is
// used each round (weighted by the feature-ratio vector P_r).
#pragma once

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "encode/encoder.h"
#include "tensor/tensor.h"

namespace gtv::encode {

class ConditionalSampler {
 public:
  // `data` must be the table the encoder was fitted on (it provides the
  // row index lists per category).
  ConditionalSampler(const TableEncoder& encoder, const data::Table& data);

  // Total CV width: sum of cardinalities of all discrete spans.
  std::size_t cv_width() const { return cv_width_; }
  bool has_discrete() const { return cv_width_ > 0; }
  std::size_t n_rows() const { return n_rows_; }

  struct Sample {
    Tensor cv;                          // batch x cv_width (empty if no discrete cols)
    std::vector<std::size_t> rows;      // matching data row per batch row
    std::vector<std::size_t> span;      // chosen discrete-span index per batch row
    std::vector<std::size_t> category;  // chosen category per batch row
  };

  // Training-time sample (log-frequency category distribution). When the
  // table has no discrete columns the CV is an empty tensor and rows are
  // sampled uniformly.
  Sample sample_train(std::size_t batch, Rng& rng) const;
  // Synthesis-time CV with categories drawn from the original frequencies.
  Tensor sample_original(std::size_t batch, Rng& rng) const;

  // One-hot target over the *encoded* layout: 1 at the conditioned
  // (span offset + category) position of each row. Used by the generator's
  // conditional cross-entropy loss.
  Tensor target_mask(const Sample& sample) const;

  // Offsets of each discrete span inside the CV (parallel to
  // encoder.discrete_spans()).
  const std::vector<std::size_t>& cv_offsets() const { return cv_offsets_; }
  const TableEncoder& encoder() const { return *encoder_; }

 private:
  const TableEncoder* encoder_;
  std::size_t n_rows_ = 0;
  std::size_t cv_width_ = 0;
  std::size_t encoded_width_ = 0;
  std::vector<std::size_t> cv_offsets_;
  // rows_by_category_[span][category] = row indices holding that category.
  std::vector<std::vector<std::vector<std::size_t>>> rows_by_category_;
  // log(1+freq) weights per span.
  std::vector<std::vector<double>> log_freq_;
  // raw frequency weights per span.
  std::vector<std::vector<double>> raw_freq_;
};

}  // namespace gtv::encode
