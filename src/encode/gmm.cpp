#include "encode/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gtv::encode {

namespace {

double log_gaussian(double x, double mean, double std) {
  const double z = (x - mean) / std;
  return -0.5 * z * z - std::log(std) - 0.918938533204673;  // log(sqrt(2*pi))
}

}  // namespace

void GaussianMixture1D::fit(const std::vector<double>& values, const GmmOptions& options,
                            Rng& rng) {
  if (values.empty()) throw std::invalid_argument("GaussianMixture1D::fit: empty data");
  const std::size_t n = values.size();
  const std::size_t k = std::min(options.max_modes, n);

  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  const double spread = std::max(*max_it - *min_it, 1e-9);

  // Degenerate column: single point mass.
  if (spread <= 1e-9 || k == 1) {
    means_ = {values[0]};
    stds_ = {std::max(options.min_std, 1e-6)};
    weights_ = {1.0};
    return;
  }

  // k-means++-style seeding: first center uniform, then distance-weighted.
  means_.clear();
  means_.push_back(values[rng.uniform_index(n)]);
  while (means_.size() < k) {
    std::vector<double> d2(n);
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      for (double m : means_) best = std::min(best, (values[i] - m) * (values[i] - m));
      d2[i] = best + 1e-12;
    }
    means_.push_back(values[rng.categorical(d2)]);
  }
  stds_.assign(k, spread / static_cast<double>(2 * k));
  weights_.assign(k, 1.0 / static_cast<double>(k));

  std::vector<double> resp(n * k);
  double previous_ll = -std::numeric_limits<double>::max();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double max_log = -std::numeric_limits<double>::max();
      for (std::size_t j = 0; j < k; ++j) {
        resp[i * k + j] = std::log(weights_[j] + 1e-300) +
                          log_gaussian(values[i], means_[j], stds_[j]);
        max_log = std::max(max_log, resp[i * k + j]);
      }
      double total = 0.0;
      for (std::size_t j = 0; j < k; ++j) {
        resp[i * k + j] = std::exp(resp[i * k + j] - max_log);
        total += resp[i * k + j];
      }
      for (std::size_t j = 0; j < k; ++j) resp[i * k + j] /= total;
      ll += max_log + std::log(total);
    }
    ll /= static_cast<double>(n);
    // M-step.
    for (std::size_t j = 0; j < k; ++j) {
      double rsum = 0.0, mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        rsum += resp[i * k + j];
        mean += resp[i * k + j] * values[i];
      }
      if (rsum < 1e-12) {
        // Re-seed a dead component.
        means_[j] = values[rng.uniform_index(n)];
        stds_[j] = spread / static_cast<double>(2 * k);
        weights_[j] = 1e-6;
        continue;
      }
      mean /= rsum;
      double var = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        var += resp[i * k + j] * (values[i] - mean) * (values[i] - mean);
      }
      var /= rsum;
      means_[j] = mean;
      stds_[j] = std::max(std::sqrt(var), options.min_std);
      weights_[j] = rsum / static_cast<double>(n);
    }
    if (std::abs(ll - previous_ll) < options.tolerance) break;
    previous_ll = ll;
  }

  // Prune insignificant modes and renormalize weights.
  std::vector<double> w, m, s;
  for (std::size_t j = 0; j < k; ++j) {
    if (weights_[j] >= options.min_weight) {
      w.push_back(weights_[j]);
      m.push_back(means_[j]);
      s.push_back(stds_[j]);
    }
  }
  if (w.empty()) {
    // Keep the dominant mode if everything was pruned.
    const std::size_t best = static_cast<std::size_t>(
        std::max_element(weights_.begin(), weights_.end()) - weights_.begin());
    w = {1.0};
    m = {means_[best]};
    s = {stds_[best]};
  }
  double total = 0.0;
  for (double v : w) total += v;
  for (double& v : w) v /= total;
  weights_ = std::move(w);
  means_ = std::move(m);
  stds_ = std::move(s);
}

GaussianMixture1D GaussianMixture1D::from_components(std::vector<double> weights,
                                                     std::vector<double> means,
                                                     std::vector<double> stds) {
  if (weights.empty() || weights.size() != means.size() || means.size() != stds.size()) {
    throw std::invalid_argument("GaussianMixture1D::from_components: component size mismatch");
  }
  for (double s : stds) {
    if (!(s > 0.0)) {
      throw std::invalid_argument("GaussianMixture1D::from_components: non-positive std");
    }
  }
  GaussianMixture1D gmm;
  gmm.weights_ = std::move(weights);
  gmm.means_ = std::move(means);
  gmm.stds_ = std::move(stds);
  return gmm;
}

std::vector<double> GaussianMixture1D::responsibilities(double value) const {
  const std::size_t k = means_.size();
  std::vector<double> out(k);
  double max_log = -std::numeric_limits<double>::max();
  for (std::size_t j = 0; j < k; ++j) {
    out[j] = std::log(weights_[j] + 1e-300) + log_gaussian(value, means_[j], stds_[j]);
    max_log = std::max(max_log, out[j]);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    out[j] = std::exp(out[j] - max_log);
    total += out[j];
  }
  for (double& v : out) v /= total;
  return out;
}

std::size_t GaussianMixture1D::most_likely_mode(double value) const {
  const auto r = responsibilities(value);
  return static_cast<std::size_t>(std::max_element(r.begin(), r.end()) - r.begin());
}

double GaussianMixture1D::log_likelihood(const std::vector<double>& values) const {
  double total = 0.0;
  for (double x : values) {
    double max_log = -std::numeric_limits<double>::max();
    std::vector<double> logs(means_.size());
    for (std::size_t j = 0; j < means_.size(); ++j) {
      logs[j] = std::log(weights_[j] + 1e-300) + log_gaussian(x, means_[j], stds_[j]);
      max_log = std::max(max_log, logs[j]);
    }
    double acc = 0.0;
    for (double l : logs) acc += std::exp(l - max_log);
    total += max_log + std::log(acc);
  }
  return total / static_cast<double>(values.size());
}

}  // namespace gtv::encode
