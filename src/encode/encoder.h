// Feature engineering for tabular GANs (CT-GAN / CTAB-GAN):
//
//   categorical column  -> one-hot                        [softmax span]
//   continuous column   -> mode-specific normalization:
//                          scalar alpha in [-1,1]         [tanh span]
//                          + one-hot over GMM modes       [softmax span]
//   mixed column        -> alpha                          [tanh span]
//                          + one-hot over (special values
//                            U GMM modes of the
//                            continuous part)             [softmax span]
//
// The encoder records a span layout so the generator knows which output
// activation to apply where, and so the conditional-vector machinery can
// find the categorical one-hot spans.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "encode/gmm.h"
#include "tensor/tensor.h"

namespace gtv::encode {

enum class Activation { kTanh, kSoftmax };

struct Span {
  std::size_t offset = 0;  // first encoded column of the span
  std::size_t width = 0;
  Activation activation = Activation::kTanh;
  std::size_t source_column = 0;  // index into the source table schema
};

struct EncoderOptions {
  GmmOptions gmm;
  // alpha = (x - mu_m) / (normalization_factor * sigma_m), clipped to [-1,1].
  double normalization_factor = 4.0;
};

class TableEncoder {
 public:
  TableEncoder() = default;

  // Fits per-column statistics (GMMs for continuous parts).
  void fit(const data::Table& table, const EncoderOptions& options, Rng& rng);

  bool fitted() const { return !column_spans_.empty() || total_width_ == 0; }
  std::size_t total_width() const { return total_width_; }
  const std::vector<Span>& spans() const { return spans_; }
  // Spans belonging to a given source column (1 for categorical, 2 otherwise).
  const std::vector<std::size_t>& spans_of_column(std::size_t column) const {
    return column_spans_.at(column);
  }
  const data::Table& schema_table() const { return schema_; }

  // Encodes rows into a (n_rows x total_width) tensor. Mode assignment for
  // continuous values is sampled from the GMM responsibilities (CT-GAN).
  Tensor encode(const data::Table& table, Rng& rng) const;
  // Inverse transform: alpha is clamped to [-1,1], one-hot spans decoded by
  // argmax. Produces a table with the fitted schema.
  data::Table decode(const Tensor& encoded) const;

  // One-hot spans usable as conditional-vector targets (categorical columns
  // only, matching CT-GAN's conditional generator).
  struct DiscreteSpan {
    std::size_t source_column = 0;
    std::size_t span_offset = 0;   // offset of the one-hot span in the encoding
    std::size_t cardinality = 0;
    std::vector<std::size_t> frequencies;  // training counts per category
  };
  const std::vector<DiscreteSpan>& discrete_spans() const { return discrete_spans_; }

  // Appends the full fitted state (schema, codecs, span layout, discrete
  // spans) to `out` as a little-endian byte blob, so a checkpoint can
  // rebuild the encoder without the training data. The inverse parses from
  // `reader_data`/`size` starting at `offset` (advanced past the blob) and
  // throws std::runtime_error on malformed input.
  void serialize(std::vector<std::uint8_t>& out) const;
  static TableEncoder deserialize(const std::uint8_t* data, std::size_t size,
                                  std::size_t& offset);

 private:
  struct ColumnCodec {
    data::ColumnType type = data::ColumnType::kContinuous;
    GaussianMixture1D gmm;              // continuous / mixed continuous part
    std::vector<double> special_values; // mixed
    std::size_t cardinality = 0;        // categorical
    double normalization_factor = 4.0;
  };

  data::Table schema_;  // zero-row table carrying the fitted schema
  std::vector<ColumnCodec> codecs_;
  std::vector<Span> spans_;
  std::vector<std::vector<std::size_t>> column_spans_;
  std::vector<DiscreteSpan> discrete_spans_;
  std::size_t total_width_ = 0;
};

}  // namespace gtv::encode
