// gtv-prof — merges the observability artefacts a GTV run leaves behind
// into one human-readable report:
//
//   gtv-prof [--profile <stem>.profile.json]     (GTV_PROFILE=1 op table)
//            [--telemetry <stem>.telemetry.json] (metrics + memory snapshot)
//            [--trace <trace.jsonl>]...          (GTV_TRACE span/flow stream)
//            [--merged-out <merged.jsonl>]       (write the merged trace)
//            [--offsets <offsets.json>]          (clock offsets per party)
//            [--health <stem>.health.json]       (GTV_HEALTH=1 alert log)
//
// --trace may repeat: a multi-process gtv-node run leaves one trace file
// per OS process, and this tool merges them into a single timeline. Party
// pids are de-conflicted (two files claiming the same pid for different
// parties get distinct pids in the merged view) and cross-party flow
// arrows survive the merge because transfer flow ids are derived
// deterministically from the link name on both sides — the send half in
// one process's file pairs with the finish half in another's.
//
// Each process stamps timestamps with its own monotonic clock, so a raw
// merge carries per-party clock skew. --offsets takes the clock-offset
// file a Collector run writes (gtv-node --role driver --collector-port
// ... --offsets-out offsets.json; offsets are measured NTP-style during
// the transport handshake, min-RTT sample wins) and rewrites every "ts"
// onto the collector's clock, making cross-party flow arrows meaningful
// to within the measured min-RTT bound. Without --offsets the old
// behavior is kept and a skew warning is printed for multi-file merges.
//
// Any subset may be given; each present artefact adds a section. When a
// telemetry snapshot is supplied and a sibling `<stem>.health.json` exists,
// it is picked up automatically (no --health needed). When both a profile
// and a telemetry snapshot are supplied the report also computes
// *coverage*: the fraction of the training rounds' wall clock (the
// gtv.phase.round_ms histogram) that the profiled op self times account for
// — the acceptance gauge for the op instrumentation.
//
// Only artefacts whose schema_version this tool knows (profile v1,
// telemetry v2/v3, health v1) are accepted; unknown versions fail loudly
// rather than misreport.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using gtv::obs::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string human_bytes(double b) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (b >= 1024.0 && u < 3) {
    b /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), u == 0 ? "%.0f %s" : "%.1f %s", b, units[u]);
  return buf;
}

void require_schema(const Value& doc, double expected, const std::string& what) {
  const double got = doc.num_or("schema_version", -1);
  if (got != expected) {
    throw std::runtime_error(what + ": unsupported schema_version " +
                             std::to_string(got) + " (expected " +
                             std::to_string(expected) + ")");
  }
}

// --- profile ---------------------------------------------------------------

struct OpRow {
  std::string name;
  std::uint64_t calls = 0;
  double total_us = 0;
  double self_us = 0;
  double bytes = 0;
};

// Parses <stem>.profile.json; returns rows sorted by self time descending.
std::vector<OpRow> load_profile(const std::string& path, double* total_self_us) {
  const Value doc = gtv::obs::json::parse(read_file(path));
  require_schema(doc, 1, path);
  std::vector<OpRow> rows;
  for (const auto& [name, op] : doc.at("ops").object) {
    OpRow row;
    row.name = name;
    row.calls = static_cast<std::uint64_t>(op.num_or("calls", 0));
    row.total_us = op.num_or("total_us", 0);
    row.self_us = op.num_or("self_us", 0);
    row.bytes = op.num_or("bytes", 0);
    *total_self_us += row.self_us;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const OpRow& a, const OpRow& b) { return a.self_us > b.self_us; });
  return rows;
}

void print_profile(const std::vector<OpRow>& rows, double total_self_us) {
  std::printf("== op profile (%zu ops, sorted by self time) ==\n", rows.size());
  std::printf("%-28s %10s %12s %12s %7s %12s\n", "op", "calls", "total_ms",
              "self_ms", "self%", "bytes");
  for (const auto& r : rows) {
    const double share = total_self_us > 0 ? 100.0 * r.self_us / total_self_us : 0;
    std::printf("%-28s %10llu %12.3f %12.3f %6.1f%% %12s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.calls), r.total_us / 1000.0,
                r.self_us / 1000.0, share, human_bytes(r.bytes).c_str());
  }
  std::printf("%-28s %10s %12s %12.3f %6.1f%%\n\n", "TOTAL", "", "",
              total_self_us / 1000.0, 100.0);
}

// --- telemetry -------------------------------------------------------------

void print_telemetry(const Value& doc) {
  const Value& mem = doc.at("memory");
  std::printf("== tensor memory ==\n");
  std::printf("  live %s   peak %s   allocs %.0f   frees %.0f\n\n",
              human_bytes(mem.num_or("live_bytes", 0)).c_str(),
              human_bytes(mem.num_or("peak_bytes", 0)).c_str(),
              mem.num_or("alloc_count", 0), mem.num_or("free_count", 0));

  const Value& hists = doc.at("metrics").at("histograms");
  std::printf("== training phases (gtv.phase.*) ==\n");
  std::printf("%-36s %8s %12s %10s %10s\n", "phase", "count", "sum_ms", "p50_ms",
              "p99_ms");
  for (const auto& [name, h] : hists.object) {
    if (name.rfind("gtv.phase.", 0) != 0) continue;
    std::printf("%-36s %8.0f %12.3f %10.3f %10.3f\n", name.c_str(),
                h.num_or("count", 0), h.num_or("sum", 0), h.num_or("p50", 0),
                h.num_or("p99", 0));
  }
  std::printf("\n");

  const Value& counters = doc.at("metrics").at("counters");
  double traffic = 0;
  std::printf("== wire traffic (net.*) ==\n");
  for (const auto& [name, c] : counters.object) {
    if (name.rfind("net.", 0) != 0) continue;
    if (name.size() > 6 && name.compare(name.size() - 6, 6, ".bytes") == 0) {
      traffic += c.number;
      std::printf("%-36s %12s\n", name.c_str(), human_bytes(c.number).c_str());
    }
  }
  std::printf("%-36s %12s\n\n", "TOTAL", human_bytes(traffic).c_str());
}

// --- health ----------------------------------------------------------------

// Prints the alert summary of a `<stem>.health.json` artefact: one line of
// severity counts plus the per-rule breakdown.
void print_health(const std::string& path) {
  const Value doc = gtv::obs::json::parse(read_file(path));
  require_schema(doc, 1, path);
  const Value& summary = doc.at("summary");
  std::printf("== health alerts (%s) ==\n", path.c_str());
  std::printf("alerts: %.0f total — %.0f fatal, %.0f warn, %.0f info\n",
              summary.num_or("total", 0), summary.num_or("fatal", 0),
              summary.num_or("warn", 0), summary.num_or("info", 0));
  if (summary.has("rules")) {
    for (const auto& [rule, count] : summary.at("rules").object) {
      std::printf("  %-34s x%.0f\n", rule.c_str(), count.number);
    }
  }
  std::printf("\n");
}

// Sum of round wall time in microseconds, from the phase histogram.
double round_wall_us(const Value& doc) {
  const Value& hists = doc.at("metrics").at("histograms");
  if (!hists.has("gtv.phase.round_ms")) return 0;
  return hists.at("gtv.phase.round_ms").num_or("sum", 0) * 1000.0;
}

// --- trace -----------------------------------------------------------------

struct PartyRow {
  std::string name;
  std::uint64_t spans = 0;
  double span_us = 0;
};

// Measured clock offset of one party relative to the collector's clock
// (offset_us = party_clock - collector_clock, rtt_us = the min RTT of the
// winning handshake sample — the alignment error bound).
struct ClockOffset {
  double offset_us = 0;
  double rtt_us = 0;
};

// Parses the offsets file a Collector run writes (--offsets-out): schema v1,
// {"offsets": {party: {"offset_us": ..., "rtt_us": ...}}}.
std::map<std::string, ClockOffset> load_offsets(const std::string& path) {
  const Value doc = gtv::obs::json::parse(read_file(path));
  require_schema(doc, 1, path);
  std::map<std::string, ClockOffset> offsets;
  for (const auto& [party, entry] : doc.at("offsets").object) {
    offsets[party] = ClockOffset{entry.num_or("offset_us", 0),
                                 entry.num_or("rtt_us", 0)};
  }
  return offsets;
}

// Rewrites the number after `"pid":` in a raw trace line (string surgery —
// the merged file must stay byte-faithful to the source except for the pid).
std::string replace_pid(const std::string& line, int new_pid) {
  const std::string key = "\"pid\":";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return line;
  std::size_t start = at + key.size();
  while (start < line.size() && line[start] == ' ') ++start;
  std::size_t end = start;
  while (end < line.size() && (std::isdigit(static_cast<unsigned char>(line[end])) ||
                               line[end] == '-')) {
    ++end;
  }
  return line.substr(0, start) + std::to_string(new_pid) + line.substr(end);
}

// Rewrites the integer after `"ts":` in a raw trace line — same surgery as
// replace_pid; the trace sink prints ts as a plain integer so the digit run
// (with optional leading '-') is the whole value.
std::string replace_ts(const std::string& line, long long new_ts) {
  const std::string key = "\"ts\":";
  const std::size_t at = line.find(key);
  if (at == std::string::npos) return line;
  std::size_t start = at + key.size();
  while (start < line.size() && line[start] == ' ') ++start;
  std::size_t end = start;
  while (end < line.size() && (std::isdigit(static_cast<unsigned char>(line[end])) ||
                               line[end] == '-')) {
    ++end;
  }
  return line.substr(0, start) + std::to_string(new_ts) + line.substr(end);
}

// Merges one or more per-process trace files into a single analysis (and
// optionally a single merged JSONL). Two files claiming the same pid for
// different party names get de-conflicted: the later file's records are
// rewritten to a fresh pid. Flow ids are deterministic per link, so the
// 's' half from one file pairs with the 'f' half from another.
//
// When `offsets` is non-empty every timestamp of an offset-bearing party is
// rewritten onto the collector's clock (ts - offset_us), then all records
// are rebased by a common shift so no ts goes negative. Cross-file flow
// pairs then carry real latency instead of clock skew and join the gap
// statistics.
void print_traces(const std::vector<std::string>& paths,
                  const std::string& merged_out,
                  const std::map<std::string, ClockOffset>& offsets) {
  const bool align = !offsets.empty();
  // Rebase so the most-ahead party's rewritten timestamps stay positive:
  // aligned_ts = ts - offset + shift, shift = max(0, max offset).
  double shift_us = 0;
  double max_rtt_us = 0;
  for (const auto& [party, off] : offsets) {
    (void)party;
    shift_us = std::max(shift_us, off.offset_us);
    max_rtt_us = std::max(max_rtt_us, off.rtt_us);
  }
  std::map<int, PartyRow> parties;
  std::map<int, std::string> pid_owner;  // merged pid -> party name
  // flow id -> (start ts, finish ts, start file, finish file); ts 0 = unseen.
  struct FlowSlot {
    double start_ts = 0, finish_ts = 0;
    int start_file = -1, finish_file = -1;
  };
  std::map<std::uint64_t, FlowSlot> flows;
  std::map<std::string, std::uint64_t> flow_names;
  std::vector<std::size_t> file_records(paths.size(), 0);
  std::vector<std::string> merged_lines;
  std::vector<std::string> missing_offsets;
  int next_free_pid = 100;

  for (std::size_t fi = 0; fi < paths.size(); ++fi) {
    std::ifstream in(paths[fi]);
    if (!in) throw std::runtime_error("cannot open " + paths[fi]);
    // Pass 1: learn this file's pid -> party-name declarations so that
    // collisions can be detected before any record is emitted.
    std::map<int, std::string> local_names;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const Value rec = gtv::obs::json::parse(line);
      if (rec.str_or("ph", "") == "M" &&
          rec.str_or("name", "") == "process_name" && rec.has("args")) {
        local_names[static_cast<int>(rec.num_or("pid", -1))] =
            rec.at("args").str_or("name", "");
      }
    }
    // Decide the remap: same pid + same party name = same logical party
    // (share the pid); same pid + different name = collision (fresh pid).
    std::map<int, int> remap;
    for (const auto& [pid, name] : local_names) {
      auto it = pid_owner.find(pid);
      if (it == pid_owner.end()) {
        pid_owner[pid] = name;
      } else if (it->second != name) {
        while (pid_owner.count(next_free_pid)) ++next_free_pid;
        remap[pid] = next_free_pid;
        pid_owner[next_free_pid] = name;
      }
    }
    // Clock correction for this file's pids, keyed by the *original* pid
    // (records are looked up before the collision remap rewrites them).
    std::map<int, double> file_offset;
    if (align) {
      for (const auto& [pid, name] : local_names) {
        auto it = offsets.find(name);
        if (it != offsets.end()) {
          file_offset[pid] = it->second.offset_us;
        } else {
          missing_offsets.push_back(name);
        }
      }
    }
    // Pass 2: aggregate + rewrite.
    in.clear();
    in.seekg(0);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++file_records[fi];
      const Value rec = gtv::obs::json::parse(line);
      const std::string ph = rec.str_or("ph", "");
      int pid = static_cast<int>(rec.num_or("pid", -1));
      double ts = rec.num_or("ts", 0);
      if (align && rec.has("ts")) {
        const auto off = file_offset.find(pid);
        ts = ts - (off != file_offset.end() ? off->second : 0.0) + shift_us;
        line = replace_ts(line, std::llround(ts));
      }
      if (auto it = remap.find(pid); it != remap.end()) {
        line = replace_pid(line, it->second);
        pid = it->second;
      }
      if (!merged_out.empty()) merged_lines.push_back(line);
      if (ph == "M") {
        if (rec.str_or("name", "") == "process_name" && rec.has("args")) {
          parties[pid].name = rec.at("args").str_or("name", "");
        }
      } else if (ph == "X") {
        parties[pid].spans += 1;
        parties[pid].span_us += rec.num_or("dur", 0);
      } else if (ph == "s" || ph == "f") {
        const auto id = static_cast<std::uint64_t>(rec.num_or("id", 0));
        auto& slot = flows[id];
        if (ph == "s") {
          slot.start_ts = ts;
          slot.start_file = static_cast<int>(fi);
          flow_names[rec.str_or("name", "?")] += 1;
        } else {
          slot.finish_ts = ts;
          slot.finish_file = static_cast<int>(fi);
        }
      }
    }
  }

  if (!merged_out.empty()) {
    std::ofstream out(merged_out);
    if (!out) throw std::runtime_error("cannot write " + merged_out);
    for (const auto& l : merged_lines) out << l << "\n";
  }

  std::size_t total_records = 0;
  for (const std::size_t n : file_records) total_records += n;
  if (paths.size() == 1) {
    std::printf("== trace: %s (%zu records) ==\n", paths[0].c_str(), total_records);
  } else {
    std::printf("== trace: %zu files merged (%zu records) ==\n", paths.size(),
                total_records);
    for (std::size_t fi = 0; fi < paths.size(); ++fi) {
      std::printf("  %-40s %zu records\n", paths[fi].c_str(), file_records[fi]);
    }
  }
  std::printf("%-4s %-16s %10s %14s\n", "pid", "party", "spans", "span_ms");
  for (const auto& [pid, row] : parties) {
    std::printf("%-4d %-16s %10llu %14.3f\n", pid,
                row.name.empty() ? "?" : row.name.c_str(),
                static_cast<unsigned long long>(row.spans), row.span_us / 1000.0);
  }

  // Without --offsets, mean gap is only meaningful for pairs within one
  // file: each process stamps with its own monotonic clock, so raw
  // cross-file deltas carry clock skew, not latency. With --offsets the
  // timestamps above were aligned onto the collector's clock, so
  // cross-file pairs join the statistics (error bound: the max min-RTT of
  // the winning clock-sync samples).
  std::uint64_t paired = 0, cross_file = 0, gap_pairs = 0, cross_pairs = 0;
  double latency_us = 0, cross_latency_us = 0;
  double cross_min_us = 0;
  for (const auto& [id, slot] : flows) {
    if (slot.start_ts > 0 && slot.finish_ts > 0) {
      ++paired;
      if (slot.start_file != slot.finish_file) {
        ++cross_file;
        if (align) {
          const double gap = slot.finish_ts - slot.start_ts;
          if (cross_pairs == 0 || gap < cross_min_us) cross_min_us = gap;
          ++cross_pairs;
          cross_latency_us += gap;
        }
      } else {
        ++gap_pairs;
        latency_us += slot.finish_ts - slot.start_ts;
      }
    }
  }
  std::printf("flows: %zu ids, %llu send/recv pairs", flows.size(),
              static_cast<unsigned long long>(paired));
  if (paths.size() > 1) {
    std::printf(" (%llu spanning files)", static_cast<unsigned long long>(cross_file));
  }
  if (gap_pairs > 0) {
    std::printf(", mean send->recv gap %.1f us", latency_us / static_cast<double>(gap_pairs));
  }
  std::printf("\n");
  if (cross_pairs > 0) {
    std::printf(
        "aligned cross-file gap: mean %.1f us, min %.1f us over %llu pairs"
        " (clock-sync error bound +/-%.1f us)\n",
        cross_latency_us / static_cast<double>(cross_pairs), cross_min_us,
        static_cast<unsigned long long>(cross_pairs), max_rtt_us);
  } else if (!align && paths.size() > 1 && cross_file > 0) {
    std::printf(
        "note: %llu cross-file pairs excluded from gap stats — timestamps"
        " carry per-process clock skew; rerun with --offsets <offsets.json>"
        " from a collector run (gtv-node --offsets-out) to align them\n",
        static_cast<unsigned long long>(cross_file));
  }
  if (!missing_offsets.empty()) {
    std::sort(missing_offsets.begin(), missing_offsets.end());
    missing_offsets.erase(
        std::unique(missing_offsets.begin(), missing_offsets.end()),
        missing_offsets.end());
    std::printf("warning: no clock offset for");
    for (const auto& name : missing_offsets) std::printf(" %s", name.c_str());
    std::printf(" — their timestamps were rebased but not skew-corrected\n");
  }
  for (const auto& [name, count] : flow_names) {
    std::printf("  %-34s x%llu\n", name.c_str(),
                static_cast<unsigned long long>(count));
  }
  if (!merged_out.empty()) {
    std::printf("merged trace written to %s (%zu records)\n", merged_out.c_str(),
                merged_lines.size());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> trace_paths;
  std::string profile_path, telemetry_path, health_path, merged_out, offsets_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--trace" && has_value) {
      trace_paths.push_back(argv[++i]);
    } else if (arg == "--merged-out" && has_value) {
      merged_out = argv[++i];
    } else if (arg == "--offsets" && has_value) {
      offsets_path = argv[++i];
    } else if (arg == "--profile" && has_value) {
      profile_path = argv[++i];
    } else if (arg == "--telemetry" && has_value) {
      telemetry_path = argv[++i];
    } else if (arg == "--health" && has_value) {
      health_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: gtv-prof [--profile <stem>.profile.json]"
                   " [--telemetry <stem>.telemetry.json]"
                   " [--trace <trace.jsonl>]... [--merged-out <merged.jsonl>]"
                   " [--offsets <offsets.json>]"
                   " [--health <stem>.health.json]\n");
      return 2;
    }
  }
  if (trace_paths.empty() && profile_path.empty() && telemetry_path.empty() &&
      health_path.empty()) {
    std::fprintf(stderr,
                 "gtv-prof: nothing to do (pass --profile/--telemetry/--trace/--health)\n");
    return 2;
  }
  // Auto-pickup: a run that wrote <stem>.telemetry.json under GTV_HEALTH=1
  // left <stem>.health.json next to it.
  const std::string kTelemetrySuffix = ".telemetry.json";
  if (health_path.empty() && telemetry_path.size() > kTelemetrySuffix.size() &&
      telemetry_path.compare(telemetry_path.size() - kTelemetrySuffix.size(),
                             kTelemetrySuffix.size(), kTelemetrySuffix) == 0) {
    const std::string candidate =
        telemetry_path.substr(0, telemetry_path.size() - kTelemetrySuffix.size()) +
        ".health.json";
    if (std::ifstream(candidate).good()) health_path = candidate;
  }

  try {
    double total_self_us = 0;
    bool have_profile = false;
    if (!profile_path.empty()) {
      const std::vector<OpRow> rows = load_profile(profile_path, &total_self_us);
      print_profile(rows, total_self_us);
      have_profile = true;
    }
    double wall_us = 0;
    if (!telemetry_path.empty()) {
      const Value doc = gtv::obs::json::parse(read_file(telemetry_path));
      const double schema = doc.num_or("schema_version", -1);
      if (schema != 2 && schema != 3) {
        throw std::runtime_error(telemetry_path + ": unsupported schema_version " +
                                 std::to_string(schema) + " (expected 2 or 3)");
      }
      print_telemetry(doc);
      wall_us = round_wall_us(doc);
    }
    if (!health_path.empty()) print_health(health_path);
    if (!trace_paths.empty()) {
      std::map<std::string, ClockOffset> offsets;
      if (!offsets_path.empty()) offsets = load_offsets(offsets_path);
      print_traces(trace_paths, merged_out, offsets);
    }
    if (have_profile && wall_us > 0) {
      std::printf("== coverage ==\n");
      std::printf("op self time %.3f ms of %.3f ms round wall clock (%.1f%%)\n",
                  total_self_us / 1000.0, wall_us / 1000.0,
                  100.0 * total_self_us / wall_us);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtv-prof: %s\n", e.what());
    return 1;
  }
  return 0;
}
