// gtv-health — renders the training-health artefacts a GTV_HEALTH=1 run
// leaves behind as a per-round report:
//
//   gtv-health --health <stem>.health.json        (HealthLog alert log)
//              [--telemetry <stem>.telemetry.json] (registry snapshot; adds
//                                                   the gtv.health.* gauges
//                                                   and wall-clock context)
//              [--rounds <rounds.json>]            (GtvTrainer::telemetry_json
//                                                   array; adds per-round
//                                                   losses/gradient norms)
//
// The report has three sections: the severity/rule summary (same line
// gtv-prof prints), a per-round alert timeline grouped from the alert log,
// and — when artefacts from the metrics side are supplied — the merged
// gtv-prof context (final per-module gradient gauges, gradient-penalty
// histogram, round wall clock), so one invocation answers both "what fired"
// and "what did the run look like around it".
//
// Accepted schema_versions: health v1, telemetry v2/v3. Unknown versions
// fail loudly rather than misreport.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using gtv::obs::json::Value;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void require_schema(const Value& doc, double lo, double hi, const std::string& what) {
  const double got = doc.num_or("schema_version", -1);
  if (got < lo || got > hi) {
    throw std::runtime_error(what + ": unsupported schema_version " +
                             std::to_string(got));
  }
}

// --- health.json -----------------------------------------------------------

void print_summary(const Value& summary) {
  std::printf("== alert summary ==\n");
  std::printf("alerts: %.0f total — %.0f fatal, %.0f warn, %.0f info\n",
              summary.num_or("total", 0), summary.num_or("fatal", 0),
              summary.num_or("warn", 0), summary.num_or("info", 0));
  if (summary.has("rules")) {
    for (const auto& [rule, count] : summary.at("rules").object) {
      std::printf("  %-34s x%.0f\n", rule.c_str(), count.number);
    }
  }
  std::printf("\n");
}

void print_timeline(const Value& alerts) {
  // round -> alerts fired that round, preserving emission order.
  std::map<std::size_t, std::vector<const Value*>> by_round;
  for (const auto& a : alerts.array) {
    by_round[static_cast<std::size_t>(a.num_or("round", 0))].push_back(&a);
  }
  std::printf("== per-round timeline (%zu alerts over %zu rounds) ==\n",
              alerts.array.size(), by_round.size());
  for (const auto& [round, fired] : by_round) {
    std::printf("round %zu:\n", round);
    for (const Value* a : fired) {
      std::printf("  [%-5s] %-24s value %.6g vs threshold %.6g  %s\n",
                  a->str_or("severity", "?").c_str(), a->str_or("rule", "?").c_str(),
                  a->num_or("value", 0), a->num_or("threshold", 0),
                  a->str_or("detail", "").c_str());
    }
  }
  std::printf("\n");
}

// --- telemetry snapshot (merged gtv-prof context) ---------------------------

void print_telemetry_context(const Value& doc) {
  const Value& metrics = doc.at("metrics");
  const Value& hists = metrics.at("histograms");
  std::printf("== run context (telemetry snapshot) ==\n");
  if (hists.has("gtv.phase.round_ms")) {
    const Value& round = hists.at("gtv.phase.round_ms");
    const double count = round.num_or("count", 0);
    std::printf("rounds: %.0f, wall %.3f ms total (%.3f ms/round p50 %.3f p99 %.3f)\n",
                count, round.num_or("sum", 0),
                count > 0 ? round.num_or("sum", 0) / count : 0.0,
                round.num_or("p50", 0), round.num_or("p99", 0));
  }
  if (hists.has("gtv.health.gp")) {
    const Value& gp = hists.at("gtv.health.gp");
    std::printf("gradient penalty |gp|: %.0f samples, p50 %.4g p99 %.4g max %.4g\n",
                gp.num_or("count", 0), gp.num_or("p50", 0), gp.num_or("p99", 0),
                gp.num_or("max", 0));
  }
  // Final per-module gradient gauges (last evaluated round).
  const Value& gauges = metrics.at("gauges");
  bool header = false;
  for (const auto& [name, g] : gauges.object) {
    if (name.rfind("gtv.health.", 0) != 0) continue;
    if (name.size() < 10 || name.compare(name.size() - 10, 10, ".grad_norm") != 0) {
      continue;
    }
    if (!header) {
      std::printf("final gradient norms (gtv.health.<module>.grad_norm):\n");
      header = true;
    }
    std::printf("  %-34s %12.6g\n", name.c_str(), g.number);
  }
  if (doc.has("health")) {
    const Value& h = doc.at("health");
    const bool enabled = h.has("enabled") && h.at("enabled").boolean;
    std::printf("envelope health block: enabled=%s total=%.0f fatal=%.0f\n",
                enabled ? "true" : "false", h.num_or("total", 0),
                h.num_or("fatal", 0));
  }
  std::printf("\n");
}

// --- per-round telemetry array (GtvTrainer::telemetry_json) -----------------

void print_rounds(const Value& rounds) {
  std::printf("== per-round losses & gradient norms (%zu rounds) ==\n",
              rounds.array.size());
  std::printf("%6s %12s %12s %10s %12s %8s %8s\n", "round", "d_loss", "g_loss",
              "|gp|", "wasserstein", "modules", "alerts");
  for (const auto& r : rounds.array) {
    const Value& losses = r.at("losses");
    std::size_t modules = 0, alerts = 0;
    if (r.has("health")) {
      modules = r.at("health").at("modules").array.size();
      alerts = r.at("health").at("alerts").array.size();
    }
    std::printf("%6.0f %12.5g %12.5g %10.4g %12.5g %8zu %8zu\n", r.num_or("round", 0),
                losses.num_or("d_loss", 0), losses.num_or("g_loss", 0),
                std::abs(losses.num_or("gp", 0)), losses.num_or("wasserstein", 0),
                modules, alerts);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string health_path, telemetry_path, rounds_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--health" && has_value) {
      health_path = argv[++i];
    } else if (arg == "--telemetry" && has_value) {
      telemetry_path = argv[++i];
    } else if (arg == "--rounds" && has_value) {
      rounds_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: gtv-health --health <stem>.health.json"
                   " [--telemetry <stem>.telemetry.json] [--rounds <rounds.json>]\n");
      return 2;
    }
  }
  if (health_path.empty() && telemetry_path.empty() && rounds_path.empty()) {
    std::fprintf(stderr,
                 "gtv-health: nothing to do (pass --health/--telemetry/--rounds)\n");
    return 2;
  }

  try {
    if (!health_path.empty()) {
      const Value doc = gtv::obs::json::parse(read_file(health_path));
      require_schema(doc, 1, 1, health_path);
      print_summary(doc.at("summary"));
      print_timeline(doc.at("alerts"));
    }
    if (!rounds_path.empty()) {
      const Value rounds = gtv::obs::json::parse(read_file(rounds_path));
      if (!rounds.is_array()) {
        throw std::runtime_error(rounds_path + ": expected a JSON array of rounds");
      }
      print_rounds(rounds);
    }
    if (!telemetry_path.empty()) {
      const Value doc = gtv::obs::json::parse(read_file(telemetry_path));
      require_schema(doc, 2, 3, telemetry_path);
      print_telemetry_context(doc);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtv-health: %s\n", e.what());
    return 1;
  }
  return 0;
}
