// gtv-node — run GTV training as real OS processes over TCP.
//
// Each invocation plays one party:
//
//   gtv-node --role server  --port 47531
//   gtv-node --role client0 --port 47531 --driver-port 47532
//   gtv-node --role client1 --port 47531 --driver-port 47532
//   gtv-node --role driver  --port 47531 --driver-port 47532
//
// All processes must agree on --clients/--rounds/--seed/--rows/--dataset
// (they derive the dataset, split and model widths independently from those
// values). The driver prints a JSON summary with per-round losses that
// match a single-process run bit-for-bit given the same seed; compare with
//
//   gtv-node --role inproc
//
// which runs the classic GtvTrainer loop in one process — optionally
// through a ChaosTransport (--chaos-drop/-dup/-corrupt/-latency-us,
// --chaos-seed) to exercise the retransmit path.
//
// Rendezvous is on localhost: the server listens on --port, the driver on
// --driver-port; clients dial both, the driver dials the server. Dials
// retry with bounded backoff, so start order does not matter.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gtv.h"
#include "core/node.h"
#include "core/partition.h"
#include "data/datasets.h"
#include "data/table.h"
#include "net/chaos.h"
#include "net/tcp.h"
#include "obs/agg.h"
#include "obs/blackbox.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/snapshot.h"
#include "obs/thread_name.h"
#include "obs/trace.h"

namespace {

using namespace gtv;

struct Args {
  std::string role;  // inproc | server | clientK | driver
  std::string dataset = "credit";
  std::size_t clients = 2;
  std::size_t rounds = 2;
  std::size_t rows = 96;
  std::size_t batch = 32;
  std::size_t d_steps = 2;
  std::uint64_t seed = 7;
  std::string host = "127.0.0.1";
  int port = 47531;
  int driver_port = 47532;
  net::ChaosOptions chaos;
  bool chaos_enabled = false;
  // Live telemetry plane (obs::agg). The Collector runs inside the driver
  // process; every party publishes snapshots to it when a port is given.
  int collector_port = 0;          // 0 = telemetry plane disabled
  std::string collector_host;      // defaults to --host
  int metrics_port = 0;            // driver only: HTTP /metrics + /status
  int snapshot_interval_ms = 200;  // publisher cadence
  std::string offsets_out;         // driver only: clock-offset JSON path
  int linger_ms = 0;  // driver only: keep endpoints up after training
  // Black-box flight recorder (obs::bb). When a directory is given, every
  // role writes <dir>/<role>.bbox and arms the crash handlers + watchdog.
  std::string blackbox_dir;
  std::size_t blackbox_size = 0;  // 0 = kDefaultRingCapacity
  int blackbox_stall_ms = 30000;
  // Recv patience, exposed so crash smokes don't park ~2 minutes on a
  // SIGKILL'd peer before giving up.
  int recv_timeout_ms = 5000;
  int max_attempts = 24;
  // Statistical sampling profiler (obs::sampler). When >0, every role arms
  // SIGPROF at this rate, writes <dir>/<role>.folded at exit, and embeds its
  // top-k hot stacks in telemetry snapshots.
  int sample_hz = 0;
  std::string profile_dir = ".";
  // Write a serve::Checkpoint container after training (inproc and driver
  // roles): the driver collects every party's part over the wire.
  std::string checkpoint_out;
  // Elastic federation: coordinated GTVT train checkpoints and crash
  // recovery. --train-ckpt/--ckpt-every/--resume drive the driver;
  // --rejoin marks a relaunched client; any of them imply --elastic,
  // which every party must run with for the park/restore protocol.
  std::string train_ckpt;       // driver: GTVT path, rewritten every interval
  std::size_t ckpt_every = 5;   // driver: rounds between checkpoint barriers
  std::string resume;           // driver: GTVT container to resume from
  int rejoin_wait_ms = 30000;   // driver: patience for a crashed party's relaunch
  bool rejoin = false;          // client: skip setup handshake, await kCmdRestore
  bool elastic = false;
  // Per-party DP noise on outbound activations (options.dp_noise_std).
  float dp_noise = 0.0f;
  // Deterministic straggler: fixed per-delivery latency injected through a
  // ChaosTransport wrapped around the real TCP transport (any role).
  int straggle_us = 0;
};

[[noreturn]] void usage(const char* msg) {
  // Early exits must still leave a last word in the flight recorder: a
  // wrapper script passing a bad flag otherwise looks identical to a
  // party that vanished mid-rendezvous.
  obs::bb::note_shutdown(2, msg != nullptr ? msg : "usage");
  if (msg != nullptr) std::fprintf(stderr, "gtv-node: %s\n", msg);
  std::fprintf(stderr,
               "usage: gtv-node --role inproc|server|client<k>|driver\n"
               "  [--dataset name] [--clients N] [--rounds R] [--rows N]\n"
               "  [--batch N] [--d-steps N] [--seed S]\n"
               "  [--host H] [--port P] [--driver-port P]\n"
               "  [--collector-port P] [--collector-host H] [--snapshot-interval-ms N]\n"
               "  [--metrics-port P] [--offsets-out FILE] [--linger-ms N]  (driver)\n"
               "  [--blackbox-dir DIR] [--blackbox-size BYTES] [--blackbox-stall-ms N]\n"
               "  [--recv-timeout-ms N] [--max-attempts N]\n"
               "  [--sample-hz HZ] [--profile-dir DIR]\n"
               "  [--checkpoint-out FILE]   (inproc, driver)\n"
               "  [--train-ckpt FILE] [--ckpt-every N] [--resume FILE]\n"
               "  [--rejoin-wait-ms N]   (driver)\n"
               "  [--rejoin]   (client)   [--elastic]   [--dp-noise STD]\n"
               "  [--straggle-us N]   (tcp roles)\n"
               "  [--chaos-drop p] [--chaos-dup p] [--chaos-corrupt p]\n"
               "  [--chaos-latency-us N] [--chaos-seed S]   (inproc only)\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--role") {
      args.role = value(i);
    } else if (flag == "--dataset") {
      args.dataset = value(i);
    } else if (flag == "--clients") {
      args.clients = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--rounds") {
      args.rounds = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--rows") {
      args.rows = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--batch") {
      args.batch = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--d-steps") {
      args.d_steps = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value(i), nullptr, 10);
    } else if (flag == "--host") {
      args.host = value(i);
    } else if (flag == "--port") {
      args.port = std::atoi(value(i));
    } else if (flag == "--driver-port") {
      args.driver_port = std::atoi(value(i));
    } else if (flag == "--collector-port") {
      args.collector_port = std::atoi(value(i));
    } else if (flag == "--collector-host") {
      args.collector_host = value(i);
    } else if (flag == "--metrics-port") {
      args.metrics_port = std::atoi(value(i));
    } else if (flag == "--snapshot-interval-ms") {
      args.snapshot_interval_ms = std::atoi(value(i));
    } else if (flag == "--offsets-out") {
      args.offsets_out = value(i);
    } else if (flag == "--linger-ms") {
      args.linger_ms = std::atoi(value(i));
    } else if (flag == "--blackbox-dir") {
      args.blackbox_dir = value(i);
    } else if (flag == "--blackbox-size") {
      args.blackbox_size = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--blackbox-stall-ms") {
      args.blackbox_stall_ms = std::atoi(value(i));
    } else if (flag == "--recv-timeout-ms") {
      args.recv_timeout_ms = std::atoi(value(i));
    } else if (flag == "--max-attempts") {
      args.max_attempts = std::atoi(value(i));
    } else if (flag == "--sample-hz") {
      args.sample_hz = std::atoi(value(i));
    } else if (flag == "--profile-dir") {
      args.profile_dir = value(i);
    } else if (flag == "--checkpoint-out") {
      args.checkpoint_out = value(i);
    } else if (flag == "--train-ckpt") {
      args.train_ckpt = value(i);
    } else if (flag == "--ckpt-every") {
      args.ckpt_every = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--resume") {
      args.resume = value(i);
    } else if (flag == "--rejoin-wait-ms") {
      args.rejoin_wait_ms = std::atoi(value(i));
    } else if (flag == "--rejoin") {
      args.rejoin = true;
    } else if (flag == "--elastic") {
      args.elastic = true;
    } else if (flag == "--dp-noise") {
      args.dp_noise = static_cast<float>(std::atof(value(i)));
    } else if (flag == "--straggle-us") {
      args.straggle_us = std::atoi(value(i));
    } else if (flag == "--chaos-drop") {
      args.chaos.drop_prob = std::atof(value(i));
      args.chaos_enabled = true;
    } else if (flag == "--chaos-dup") {
      args.chaos.dup_prob = std::atof(value(i));
      args.chaos_enabled = true;
    } else if (flag == "--chaos-corrupt") {
      args.chaos.corrupt_prob = std::atof(value(i));
      args.chaos_enabled = true;
    } else if (flag == "--chaos-latency-us") {
      args.chaos.latency_max_us = std::atoi(value(i));
      args.chaos_enabled = true;
    } else if (flag == "--chaos-seed") {
      args.chaos.seed = std::strtoull(value(i), nullptr, 10);
      args.chaos_enabled = true;
    } else {
      usage(("unknown option " + flag).c_str());
    }
  }
  if (args.role.empty()) usage("--role is required");
  // Any elastic-federation flag opts the whole party into the park/restore
  // protocol (the driver decides when the barriers run; server and clients
  // just need to survive a peer dying mid-round).
  if (!args.train_ckpt.empty() || !args.resume.empty() || args.rejoin) {
    args.elastic = true;
  }
  return args;
}

// Everything all parties must agree on, derived deterministically from Args.
struct Shared {
  core::NodeConfig config;
  std::vector<data::Table> shards;
  std::vector<std::size_t> g_widths;
  std::vector<std::size_t> d_widths;
};

Shared build_shared(const Args& args) {
  Shared shared;
  core::GtvOptions& options = shared.config.options;
  // The exact gradient penalty differentiates through every party's bottom
  // model in one autograd graph — a simulation-only concession. Node mode
  // (and its in-process reference) always uses the server-local penalty so
  // both paths run the identical per-party computation.
  options.exact_gradient_penalty = false;
  options.gan.batch_size = args.batch;
  options.gan.d_steps_per_round = args.d_steps;
  options.dp_noise_std = args.dp_noise;
  shared.config.n_clients = args.clients;
  shared.config.rounds = args.rounds;
  shared.config.seed = args.seed;
  shared.config.train_rows = args.rows;
  shared.config.validate();

  Rng data_rng(args.seed ^ 0xda7aULL);
  const data::Table table = data::make_dataset(args.dataset, args.rows, data_rng);
  if (table.n_cols() < args.clients) usage("more clients than dataset columns");
  // Contiguous even column split, client 0 first.
  std::vector<std::vector<std::size_t>> groups(args.clients);
  const std::size_t base = table.n_cols() / args.clients;
  std::size_t extra = table.n_cols() % args.clients;
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < args.clients; ++g) {
    const std::size_t take = base + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    for (std::size_t c = 0; c < take; ++c) groups[g].push_back(cursor++);
  }
  shared.shards = data::vertical_split(table, groups);

  std::vector<std::size_t> feature_counts;
  for (const auto& shard : shared.shards) feature_counts.push_back(shard.n_cols());
  const auto ratios = core::ratio_vector(feature_counts);
  shared.g_widths = core::proportional_widths(options.generator_hidden, ratios);
  shared.d_widths = core::proportional_widths(options.gan.hidden, ratios);
  return shared;
}

void declare_parties(std::size_t n_clients) {
  obs::TraceSink& sink = obs::TraceSink::instance();
  sink.declare_party(0, "server");
  for (std::size_t i = 0; i < n_clients; ++i) {
    sink.declare_party(static_cast<int>(i) + 1, "client" + std::to_string(i));
  }
  sink.declare_party(obs::kDriverPid, "driver");
}

// Model fingerprint: serve::hash_table is the same FNV-1a the checkpoint
// container stamps, so the report hash and the checkpoint hash agree.
std::uint64_t hash_table(const data::Table& table) { return serve::hash_table(table); }

void print_losses(const std::vector<gan::RoundLosses>& history) {
  std::printf("  \"rounds\": [");
  for (std::size_t r = 0; r < history.size(); ++r) {
    std::printf("%s\n    {\"d_loss\": %.9g, \"g_loss\": %.9g, \"gp\": %.9g, "
                "\"wasserstein\": %.9g}",
                r == 0 ? "" : ",", history[r].d_loss, history[r].g_loss, history[r].gp,
                history[r].wasserstein);
  }
  std::printf("\n  ],\n");
}

void print_traffic(const net::TrafficMeter& meter) {
  const net::LinkStats total = meter.total();
  std::printf("  \"traffic\": {\"bytes\": %llu, \"messages\": %llu, \"retries\": %llu, "
              "\"timeouts\": %llu, \"corrupt_frames\": %llu}",
              static_cast<unsigned long long>(total.bytes),
              static_cast<unsigned long long>(total.messages),
              static_cast<unsigned long long>(total.retries),
              static_cast<unsigned long long>(total.timeouts),
              static_cast<unsigned long long>(total.corrupt_frames));
}

// --straggle-us: wraps the party's TCP transport in a ChaosTransport whose
// only fault is a fixed per-delivery latency — a deterministic straggler.
// The lockstep protocol tolerates it by construction; crash recovery must
// keep tolerating it, which the resume smoke pins.
std::shared_ptr<net::Transport> maybe_straggle(std::shared_ptr<net::Transport> transport,
                                               const Args& args) {
  if (args.straggle_us <= 0) return transport;
  net::ChaosOptions chaos;
  chaos.latency_min_us = args.straggle_us;
  chaos.latency_max_us = args.straggle_us;
  chaos.seed = args.seed;
  return std::make_shared<net::ChaosTransport>(std::move(transport), chaos);
}

// Node roles park longer per recv attempt than the loopback default: the
// peer may legitimately be grinding through a whole critic step. Defaults
// give ~2 minutes before giving up on a peer; crash smokes dial both down.
net::RetryPolicy node_retry_policy(const Args& args) {
  net::RetryPolicy policy;
  policy.recv_timeout_ms = args.recv_timeout_ms;
  policy.max_attempts = args.max_attempts;
  return policy;
}

// Opens the per-role flight recorder and arms the fatal-signal handlers.
// No-op when --blackbox-dir was not given.
void open_blackbox(const Args& args, const std::string& role) {
  if (args.blackbox_dir.empty()) return;
  obs::bb::RunHeaderRecord header;
  header.party = role;
  header.n_clients = args.clients;
  header.rounds = args.rounds;
  header.seed = args.seed;
  obs::bb::BlackBoxOptions options;
  if (args.blackbox_size > 0) options.capacity_bytes = args.blackbox_size;
  obs::bb::BlackBox::open_global(args.blackbox_dir + "/" + role + ".bbox", header,
                                 options);
  obs::bb::install_crash_handlers();
}

obs::bb::StallWatchdogOptions watchdog_options(const Args& args) {
  obs::bb::StallWatchdogOptions options;
  options.stall_ms = args.blackbox_stall_ms;
  return options;
}

// --sample-hz plumbing. The sampler is process-global; each role arms it
// right before its main loop and writes <profile-dir>/<role>.folded on the
// way out. Phase ids in LiveStatus are agg::Phase values, so sample tags
// reuse the same names the telemetry plane shows.
const char* sampler_phase_name(std::uint32_t phase) {
  return obs::agg::to_string(static_cast<obs::agg::Phase>(phase));
}

obs::sampler::Sampler* start_sampler(const Args& args,
                                     const obs::agg::LiveStatus* status) {
  if (args.sample_hz <= 0) return nullptr;
  obs::sampler::SamplerOptions options;
  options.cpu_hz = args.sample_hz;
  options.phase_name = sampler_phase_name;
  return obs::sampler::Sampler::start_global(
      options, status != nullptr ? &status->round : nullptr,
      status != nullptr ? &status->phase : nullptr);
}

// Disarms the sampler and writes the folded profile. Must run before the
// LiveStatus the sampler tags from goes out of scope.
void finish_sampler(obs::sampler::Sampler* prof, const Args& args,
                    const std::string& role) {
  if (prof == nullptr) return;
  prof->stop();
  const std::string dir = args.profile_dir.empty() ? "." : args.profile_dir;
  prof->write_folded(dir + "/" + role + ".folded", role);
}

void print_sampler(const obs::sampler::Sampler* prof) {
  if (prof == nullptr) return;
  const obs::sampler::SamplerStats st = prof->stats();
  std::printf(
      ",\n  \"sampler\": {\"cpu_samples\": %llu, \"offcpu_samples\": %llu, "
      "\"wall_sweeps\": %llu, \"dropped\": %llu, \"threads\": %llu}",
      static_cast<unsigned long long>(st.cpu_samples),
      static_cast<unsigned long long>(st.offcpu_samples),
      static_cast<unsigned long long>(st.wall_sweeps),
      static_cast<unsigned long long>(st.dropped),
      static_cast<unsigned long long>(st.threads_seen));
}

void graceful_signal_handler(int sig) {
  // Last word into the ring first (async-signal-safe), then std::exit so
  // the atexit hooks flush traces and GTV_METRICS_DUMP. std::exit from a
  // handler is not strictly async-signal-safe; for a terminal-interrupt
  // path, occasionally losing that race beats always losing the artifacts.
  obs::bb::note_shutdown(static_cast<std::uint32_t>(128 + sig),
                         sig == SIGINT ? "SIGINT" : "SIGTERM");
  std::exit(128 + sig);
}

void install_graceful_handlers() {
  struct sigaction sa{};
  sa.sa_handler = graceful_signal_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

// Starts this party's snapshot publisher when a collector port was given
// (`host_override` lets the driver dial its own in-process Collector on
// loopback). Returns nullptr when the telemetry plane is off.
std::unique_ptr<obs::agg::SnapshotPublisher> start_publisher(
    const Args& args, const std::string& party, const obs::agg::LiveStatus* status,
    const std::string& host_override = {}) {
  if (args.collector_port <= 0) return nullptr;
  std::string host = host_override;
  if (host.empty()) host = args.collector_host.empty() ? args.host : args.collector_host;
  obs::agg::PublisherOptions options;
  options.interval_ms = args.snapshot_interval_ms;
  auto publisher = std::make_unique<obs::agg::SnapshotPublisher>(
      party, host, static_cast<std::uint16_t>(args.collector_port), options);
  publisher->set_status(status);
  publisher->start();
  return publisher;
}

void print_publisher(const obs::agg::SnapshotPublisher& publisher) {
  const net::ClockSync sync = publisher.clock_sync();
  std::printf(
      ",\n  \"telemetry\": {\"snapshots\": %llu, \"send_failures\": %llu, "
      "\"clock\": {\"valid\": %s, \"offset_us\": %.3f, \"rtt_us\": %.3f}}",
      static_cast<unsigned long long>(publisher.published()),
      static_cast<unsigned long long>(publisher.send_failures()),
      sync.valid ? "true" : "false", sync.offset_us, sync.rtt_us);
}

int run_inproc(const Args& args, const Shared& shared) {
  core::GtvTrainer trainer(shared.shards, shared.config.options, args.seed);
  std::shared_ptr<net::ChaosTransport> chaos;
  if (args.chaos_enabled) {
    chaos = std::make_shared<net::ChaosTransport>(std::make_shared<net::InProcTransport>(),
                                                  args.chaos);
    trainer.traffic().set_transport(chaos);
  }
  // No LiveStatus in the classic loop; samples carry round 0 / phase "idle"
  // tags but still attribute CPU to the hot kernels.
  obs::sampler::Sampler* prof = start_sampler(args, nullptr);
  trainer.train(args.rounds, [](std::size_t round, const gan::RoundLosses& losses) {
    obs::bb::note_loss(round, losses.d_loss, losses.g_loss, losses.gp,
                       losses.wasserstein);
  });
  const std::uint64_t model_hash = hash_table(trainer.sample(64));
  if (!args.checkpoint_out.empty()) {
    trainer.save_checkpoint(args.checkpoint_out, model_hash);
  }
  finish_sampler(prof, args, "inproc");

  std::printf("{\n  \"role\": \"inproc\",\n  \"transport\": \"%s\",\n",
              args.chaos_enabled ? "chaos+inproc" : "inproc");
  print_losses(trainer.history());
  print_traffic(trainer.traffic());
  std::printf(",\n  \"model_hash\": \"%016llx\"",
              static_cast<unsigned long long>(model_hash));
  if (!args.checkpoint_out.empty()) {
    std::printf(",\n  \"checkpoint\": \"%s\"", args.checkpoint_out.c_str());
  }
  if (chaos) {
    const auto stats = chaos->stats();
    std::printf(
        ",\n  \"chaos\": {\"sends\": %llu, \"drops\": %llu, \"dups\": %llu, "
        "\"corruptions\": %llu, \"delays\": %llu},\n"
        "  \"schedule_digest\": \"%016llx\"",
        static_cast<unsigned long long>(stats.sends),
        static_cast<unsigned long long>(stats.drops),
        static_cast<unsigned long long>(stats.dups),
        static_cast<unsigned long long>(stats.corruptions),
        static_cast<unsigned long long>(stats.delays),
        static_cast<unsigned long long>(chaos->schedule_digest()));
  }
  print_sampler(prof);
  std::printf("\n}\n");
  return 0;
}

int run_server(const Args& args, Shared shared) {
  obs::PartyScope scope(0);
  auto transport = std::make_shared<net::TcpTransport>("server");
  transport->listen(static_cast<std::uint16_t>(args.port));
  core::ServerNode node(shared.config, shared.g_widths, shared.d_widths);
  node.set_transport(maybe_straggle(transport, args));
  node.set_elastic(args.elastic);
  node.traffic().set_retry_policy(node_retry_policy(args));
  obs::agg::LiveStatus status;
  node.set_live_status(&status);
  obs::bb::StallWatchdog watchdog(&status.round, &status.phase, watchdog_options(args));
  if (!args.blackbox_dir.empty()) watchdog.start();
  auto publisher = start_publisher(args, "server", &status);
  obs::sampler::Sampler* prof = start_sampler(args, &status);
  node.run();
  if (publisher) publisher->stop();
  watchdog.stop();
  finish_sampler(prof, args, "server");
  std::printf("{\n  \"role\": \"server\",\n  \"transport\": \"tcp\",\n");
  print_traffic(node.traffic());
  if (publisher) print_publisher(*publisher);
  print_sampler(prof);
  std::printf("\n}\n");
  return 0;
}

int run_client(const Args& args, Shared shared, std::size_t id) {
  obs::PartyScope scope(static_cast<int>(id) + 1);
  const std::string name = "client" + std::to_string(id);
  auto transport = std::make_shared<net::TcpTransport>(name);
  transport->connect_peer("server", args.host, static_cast<std::uint16_t>(args.port));
  transport->connect_peer("driver", args.host,
                          static_cast<std::uint16_t>(args.driver_port));
  core::ClientNode node(shared.config, id, std::move(shared.shards[id]),
                        shared.g_widths[id], shared.d_widths[id]);
  node.set_transport(maybe_straggle(transport, args));
  node.set_elastic(args.elastic);
  node.set_rejoin(args.rejoin);
  node.traffic().set_retry_policy(node_retry_policy(args));
  obs::agg::LiveStatus status;
  node.set_live_status(&status);
  obs::bb::StallWatchdog watchdog(&status.round, &status.phase, watchdog_options(args));
  if (!args.blackbox_dir.empty()) watchdog.start();
  auto publisher = start_publisher(args, name, &status);
  obs::sampler::Sampler* prof = start_sampler(args, &status);
  node.run();
  if (publisher) publisher->stop();
  watchdog.stop();
  finish_sampler(prof, args, name);
  std::printf("{\n  \"role\": \"%s\",\n  \"transport\": \"tcp\",\n", name.c_str());
  print_traffic(node.traffic());
  if (publisher) print_publisher(*publisher);
  print_sampler(prof);
  std::printf("\n}\n");
  return 0;
}

// Writes `text` to `path`; returns false (and warns) on failure.
bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "gtv-node: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

void print_collector(const obs::agg::Collector& collector, std::size_t expected) {
  const auto parties = collector.parties();
  std::size_t reported = 0;
  for (const auto& view : parties) {
    if (view.snapshots > 0) ++reported;
  }
  std::printf(",\n  \"collector\": {\"parties\": %zu, \"expected\": %zu, "
              "\"all_reported\": %s, \"snapshot_latency_p50_ms\": %.3f, "
              "\"snapshot_latency_p99_ms\": %.3f,\n    \"views\": [",
              parties.size(), expected, reported >= expected ? "true" : "false",
              collector.latency_ms(50), collector.latency_ms(99));
  for (std::size_t i = 0; i < parties.size(); ++i) {
    const auto& view = parties[i];
    std::printf("%s\n      {\"party\": \"%s\", \"snapshots\": %llu, \"stale\": %s, "
                "\"reconnects\": %llu, \"clock_valid\": %s, \"clock_offset_us\": %.3f, "
                "\"clock_rtt_us\": %.3f}",
                i == 0 ? "" : ",", view.latest.party.c_str(),
                static_cast<unsigned long long>(view.snapshots),
                view.stale ? "true" : "false",
                static_cast<unsigned long long>(view.reconnects),
                view.have_clock ? "true" : "false", view.clock_offset_us,
                view.clock_rtt_us);
  }
  std::printf("\n    ]}");
}

int run_driver(const Args& args, const Shared& shared) {
  obs::PartyScope scope(obs::kDriverPid);

  // The Collector lives in the driver process: telemetry converges where
  // the round schedule is decided, on sockets that never carry training.
  std::unique_ptr<obs::agg::Collector> collector;
  if (args.collector_port > 0) {
    collector = std::make_unique<obs::agg::Collector>();
    collector->listen(static_cast<std::uint16_t>(args.collector_port));
    if (args.metrics_port > 0) {
      collector->serve_http(static_cast<std::uint16_t>(args.metrics_port));
    }
  }

  auto transport = std::make_shared<net::TcpTransport>("driver");
  transport->listen(static_cast<std::uint16_t>(args.driver_port));
  transport->connect_peer("server", args.host, static_cast<std::uint16_t>(args.port));
  // The driver speaks first (command broadcast), so unlike the server it
  // must wait for every client to finish the rendezvous.
  for (std::size_t i = 0; i < args.clients; ++i) {
    const std::string peer = "client" + std::to_string(i);
    if (!transport->wait_for_peer(peer, 60000)) {
      throw net::TransportError("driver: " + peer + " never connected");
    }
  }
  core::DriverNode node(shared.config);
  node.set_transport(maybe_straggle(transport, args));
  node.traffic().set_retry_policy(node_retry_policy(args));
  if (!args.checkpoint_out.empty()) node.set_checkpoint_out(args.checkpoint_out);
  if (!args.train_ckpt.empty()) node.set_train_checkpoint(args.train_ckpt, args.ckpt_every);
  if (!args.resume.empty()) node.set_resume(args.resume);
  node.set_rejoin_wait_ms(args.rejoin_wait_ms);
  obs::agg::LiveStatus status;
  node.set_live_status(&status);
  obs::bb::StallWatchdog watchdog(&status.round, &status.phase, watchdog_options(args));
  if (!args.blackbox_dir.empty()) watchdog.start();
  auto publisher = start_publisher(args, "driver", &status, "127.0.0.1");
  obs::sampler::Sampler* prof = start_sampler(args, &status);

  // A SIGKILL'd party makes node.run() throw, so the end-of-run offsets
  // write below never happens — on exactly the runs gtv-postmortem needs
  // offsets for. A side thread writes them as soon as every party has
  // clock info, and writes whatever arrived if the run unwinds first.
  std::atomic<bool> offsets_stop{false};
  std::thread offsets_thread;
  struct OffsetsJoin {
    std::atomic<bool>* stop;
    std::thread* thread;
    ~OffsetsJoin() {
      stop->store(true);
      if (thread->joinable()) thread->join();
    }
  } offsets_join{&offsets_stop, &offsets_thread};
  if (collector && !args.offsets_out.empty()) {
    offsets_thread = std::thread([&collector, &offsets_stop, &args] {
      obs::set_current_thread_name("gtv-offsets");
      const std::size_t expected = args.clients + 2;
      while (!offsets_stop.load()) {
        std::size_t clocked = 0;
        for (const auto& view : collector->parties()) {
          if (view.have_clock) ++clocked;
        }
        if (clocked >= expected) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      write_file(args.offsets_out, collector->offsets_json() + "\n");
    });
  }

  const auto history = node.run();
  if (publisher) publisher->stop();
  watchdog.stop();
  finish_sampler(prof, args, "driver");

  if (collector) {
    // Parties flush a final snapshot on their way out; give the plane a
    // moment so the summary below reflects everyone.
    collector->wait_for_snapshots(args.clients + 2, 1, 5000);
    if (!args.offsets_out.empty()) {
      // Retire the early writer first so the final (most complete) offsets
      // are what lands on disk.
      offsets_stop.store(true);
      if (offsets_thread.joinable()) offsets_thread.join();
      write_file(args.offsets_out, collector->offsets_json() + "\n");
    }
    if (args.linger_ms > 0) {
      // Keep /metrics and /status scrapeable after training ends — smoke
      // tests and dashboards get a deterministic window.
      std::this_thread::sleep_for(std::chrono::milliseconds(args.linger_ms));
    }
  }

  std::printf("{\n  \"role\": \"driver\",\n  \"transport\": \"tcp\",\n");
  print_losses(history);
  print_traffic(node.traffic());
  if (!args.checkpoint_out.empty()) {
    std::printf(",\n  \"checkpoint\": \"%s\",\n  \"model_hash\": \"%016llx\"",
                args.checkpoint_out.c_str(),
                static_cast<unsigned long long>(node.checkpoint_hash()));
  }
  if (args.elastic) {
    std::printf(",\n  \"resumed_from\": %zu,\n  \"recoveries\": %zu",
                node.resumed_from(), node.recoveries());
  }
  if (publisher) print_publisher(*publisher);
  if (collector) print_collector(*collector, args.clients + 2);
  print_sampler(prof);
  std::printf("\n}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    open_blackbox(args, args.role);
    install_graceful_handlers();
    Shared shared = build_shared(args);
    declare_parties(args.clients);
    int rc = 2;
    if (args.role == "inproc") {
      rc = run_inproc(args, shared);
    } else if (args.role == "server") {
      rc = run_server(args, std::move(shared));
    } else if (args.role == "driver") {
      rc = run_driver(args, shared);
    } else if (args.role.rfind("client", 0) == 0) {
      const std::size_t id = std::strtoul(args.role.c_str() + 6, nullptr, 10);
      if (id >= args.clients) usage("client id out of range");
      rc = run_client(args, std::move(shared), id);
    } else {
      usage(("unknown role " + args.role).c_str());
    }
    // The ring's last word: a clean exit. A SIGKILL'd party never gets
    // here, which is precisely how gtv-postmortem tells the dead from the
    // survivors.
    obs::bb::note_shutdown(0, "clean");
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtv-node(%s): %s\n", args.role.c_str(), e.what());
    obs::bb::note_shutdown(1, e.what());
    return 1;
  }
}
