// gtv-postmortem — cross-party crash forensics from black-box ring files.
//
//   gtv-postmortem [options] <ring.bbox> [<ring.bbox> ...]
//     --offsets FILE   clock offsets from `gtv-node --offsets-out` (aligns
//                      parties onto the collector clock; without it the
//                      wall-clock stamps in the run headers are used)
//     --window-s K     timeline/context window before death (default 10)
//     --json           machine-readable summary instead of the report
//
//   gtv-postmortem --bench --bench-path FILE [--bench-records N]
//     appends N records to a fresh ring, reads them back, and prints
//     records/sec + per-append latency percentiles as JSON (the check.sh
//     blackbox stage turns this into BENCH_blackbox_smoke.json).
//
// The report answers the first three questions of any dead run: who died
// first (a party whose ring ends without a shutdown or crash record never
// got a word out — SIGKILL, OOM-kill, power), what it was doing (last
// round/phase it recorded), and what the links saw around the death
// (retries/timeouts/disconnects in the surviving rings).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/blackbox.h"
#include "obs/json.h"

namespace {

using namespace gtv::obs;

struct Args {
  std::vector<std::string> rings;
  std::string offsets_path;
  double window_s = 10.0;
  bool json = false;
  bool bench = false;
  std::string bench_path;
  std::size_t bench_records = 200000;
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "gtv-postmortem: %s\n", msg);
  std::fprintf(stderr,
               "usage: gtv-postmortem [--offsets FILE] [--window-s K] [--json] "
               "<ring.bbox>...\n"
               "       gtv-postmortem --bench --bench-path FILE [--bench-records N]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--offsets") {
      args.offsets_path = value(i);
    } else if (flag == "--window-s") {
      args.window_s = std::atof(value(i));
    } else if (flag == "--json") {
      args.json = true;
    } else if (flag == "--bench") {
      args.bench = true;
    } else if (flag == "--bench-path") {
      args.bench_path = value(i);
    } else if (flag == "--bench-records") {
      args.bench_records = std::strtoul(value(i), nullptr, 10);
    } else if (!flag.empty() && flag[0] == '-') {
      usage(("unknown option " + flag).c_str());
    } else {
      args.rings.push_back(flag);
    }
  }
  if (args.bench) {
    if (args.bench_path.empty()) usage("--bench requires --bench-path");
  } else if (args.rings.empty()) {
    usage("no ring files given");
  }
  return args;
}

const char* phase_name(std::uint32_t phase) {
  switch (phase) {
    case 0: return "idle";
    case 1: return "setup";
    case 2: return "critic";
    case 3: return "generator";
    case 4: return "shuffle";
    case 5: return "done";
    case 6: return "serve-wait";   // serving daemon: idle between batches
    case 7: return "serve-batch";  // serving daemon: coalesced generator run
    case 8: return "serve-drain";  // serving daemon: graceful shutdown
  }
  return "?";
}

const char* signal_name(std::uint32_t sig) {
  switch (sig) {
    case 4: return "SIGILL";
    case 6: return "SIGABRT";
    case 7: return "SIGBUS";
    case 8: return "SIGFPE";
    case 11: return "SIGSEGV";
  }
  return "signal";
}

// One party's ring plus everything the report derives from it.
struct PartyView {
  std::string path;
  std::string party;
  bb::ReadResult ring;
  std::vector<std::string> problems;
  // Cross-party alignment: aligned_us = t_us + align_shift_us.
  double align_shift_us = 0;
  bool aligned = false;

  bool clean_shutdown = false;       // ShutdownRecord with code 0
  std::optional<std::uint32_t> shutdown_code;
  std::string shutdown_reason;
  std::optional<bb::CrashRecord> crash;
  std::optional<bb::StallRecord> stall;
  std::uint64_t last_round = 0;
  std::uint32_t last_phase = 0;
  double last_aligned_us = 0;
  std::map<std::string, std::uint64_t> net_events;  // kind -> count
  std::uint64_t alerts = 0;

  // A party that never wrote a shutdown or crash record died without a
  // word — the signature of SIGKILL / OOM-kill / machine loss.
  bool died_silently() const { return !shutdown_code.has_value() && !crash.has_value(); }
  double aligned_us(std::uint64_t t_us) const {
    return static_cast<double>(t_us) + align_shift_us;
  }
};

std::map<std::string, double> load_offsets(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open offsets file " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  std::map<std::string, double> offsets;
  for (const auto& [party, entry] : doc.at("offsets").object) {
    offsets[party] = entry.num_or("offset_us", 0);
  }
  return offsets;
}

PartyView load_party(const std::string& path) {
  PartyView view;
  view.path = path;
  view.ring = bb::read_ring(path);
  view.problems = bb::validate(view.ring);
  view.party = view.ring.has_run_header ? view.ring.run_header.party : path;

  for (const bb::Record& rec : view.ring.records) {
    const std::uint8_t* p = rec.payload.data();
    const std::size_t n = rec.payload.size();
    try {
      switch (rec.type) {
        case bb::RecordType::kPhase: {
          const auto phase = bb::PhaseRecord::decode(p, n);
          view.last_round = std::max(view.last_round, phase.round);
          view.last_phase = phase.phase;
          break;
        }
        case bb::RecordType::kLoss: {
          const auto loss = bb::LossRecord::decode(p, n);
          view.last_round = std::max(view.last_round, loss.round);
          break;
        }
        case bb::RecordType::kAlert:
          ++view.alerts;
          break;
        case bb::RecordType::kNetEvent: {
          const auto event = bb::NetEventRecord::decode(p, n);
          ++view.net_events[bb::to_string(event.kind)];
          break;
        }
        case bb::RecordType::kStall:
          view.stall = bb::StallRecord::decode(p, n);
          break;
        case bb::RecordType::kCrash:
          view.crash = bb::CrashRecord::decode(p, n);
          break;
        case bb::RecordType::kShutdown: {
          const auto down = bb::ShutdownRecord::decode(p, n);
          view.shutdown_code = down.code;
          view.shutdown_reason = down.reason;
          view.clean_shutdown = down.code == 0;
          break;
        }
        default:
          break;
      }
    } catch (const std::exception&) {
      // validate() already reported it; keep deriving from the rest.
    }
  }
  return view;
}

// Computes align_shift_us for every party. With offsets: shift = -offset
// (onto the collector clock, offset_us = party_clock - collector_clock,
// same convention as gtv-prof --offsets). Without: the run headers carry
// CLOCK_REALTIME at open, so shift = wall_us - t_us(open) puts every party
// on the shared wall clock (cruder: no RTT bound, NTP steps show up).
const char* align_parties(std::vector<PartyView>& parties,
                          const std::map<std::string, double>& offsets) {
  bool all_offsets = !offsets.empty();
  for (const PartyView& view : parties) {
    if (offsets.find(view.party) == offsets.end()) all_offsets = false;
  }
  if (all_offsets) {
    for (PartyView& view : parties) {
      view.align_shift_us = -offsets.at(view.party);
      view.aligned = true;
    }
    return "offsets";
  }
  bool all_wall = true;
  for (const PartyView& view : parties) {
    if (!view.ring.has_run_header || view.ring.run_header.wall_us == 0 ||
        view.ring.records.empty()) {
      all_wall = false;
    }
  }
  if (all_wall) {
    for (PartyView& view : parties) {
      // The run header is the first record its party wrote; its t_us is the
      // trace clock at open, paired with wall_us from CLOCK_REALTIME.
      double open_t_us = 0;
      for (const bb::Record& rec : view.ring.records) {
        if (rec.type == bb::RecordType::kRunHeader) {
          open_t_us = static_cast<double>(rec.t_us);
          break;
        }
      }
      view.align_shift_us = static_cast<double>(view.ring.run_header.wall_us) - open_t_us;
      view.aligned = true;
    }
    return "wall";
  }
  return "none";  // single-party or damaged rings: times stay per-party
}

std::string describe(const bb::Record& rec) {
  const std::uint8_t* p = rec.payload.data();
  const std::size_t n = rec.payload.size();
  std::ostringstream os;
  try {
    switch (rec.type) {
      case bb::RecordType::kRunHeader: {
        const auto header = bb::RunHeaderRecord::decode(p, n);
        os << "run start: clients=" << header.n_clients << " rounds=" << header.rounds
           << " seed=" << header.seed << " pid=" << header.pid;
        break;
      }
      case bb::RecordType::kPhase: {
        const auto phase = bb::PhaseRecord::decode(p, n);
        os << "phase " << phase_name(phase.phase) << " (round " << phase.round << ")";
        break;
      }
      case bb::RecordType::kLoss: {
        const auto loss = bb::LossRecord::decode(p, n);
        os << "losses round " << loss.round << ": d=" << loss.d_loss
           << " g=" << loss.g_loss << " gp=" << loss.gp << " w=" << loss.wasserstein;
        break;
      }
      case bb::RecordType::kAlert: {
        const auto alert = bb::AlertRecord::decode(p, n);
        os << "ALERT sev=" << alert.severity << " rule=" << alert.rule << " round "
           << alert.round;
        break;
      }
      case bb::RecordType::kNetEvent: {
        const auto event = bb::NetEventRecord::decode(p, n);
        os << "net " << bb::to_string(event.kind) << " " << event.link;
        break;
      }
      case bb::RecordType::kStall: {
        const auto stall = bb::StallRecord::decode(p, n);
        os << "STALL " << stall.stalled_ms << "ms at round " << stall.round << " phase "
           << phase_name(stall.phase);
        break;
      }
      case bb::RecordType::kThreadStack: {
        const auto stack = bb::ThreadStackRecord::decode(p, n);
        os << "thread " << stack.tid << " stack:";
        for (std::uint64_t pc : stack.pcs) {
          os << " 0x" << std::hex << pc << std::dec;
        }
        break;
      }
      case bb::RecordType::kCrash: {
        const auto crash = bb::CrashRecord::decode(p, n);
        os << "CRASH " << signal_name(crash.signal) << " fault_addr=0x" << std::hex
           << crash.fault_addr << std::dec << " pcs:";
        for (std::uint64_t pc : crash.pcs) {
          os << " 0x" << std::hex << pc << std::dec;
        }
        break;
      }
      case bb::RecordType::kShutdown: {
        const auto down = bb::ShutdownRecord::decode(p, n);
        os << "shutdown code=" << down.code
           << (down.reason.empty() ? "" : " reason=" + down.reason);
        break;
      }
      default:
        os << "record type " << static_cast<int>(rec.type);
    }
  } catch (const std::exception& e) {
    os << "<undecodable " << bb::to_string(rec.type) << ": " << e.what() << ">";
  }
  return os.str();
}

std::string party_status(const PartyView& view) {
  std::ostringstream os;
  if (view.crash.has_value()) {
    os << "crashed (" << signal_name(view.crash->signal) << ")";
  } else if (view.clean_shutdown) {
    os << "clean exit";
  } else if (view.shutdown_code.has_value()) {
    os << "error exit (code " << *view.shutdown_code;
    if (!view.shutdown_reason.empty()) os << ", " << view.shutdown_reason;
    os << ")";
  } else {
    os << "DIED SILENTLY (no shutdown/crash record — SIGKILL/OOM?)";
  }
  return os.str();
}

int run_report(const Args& args) {
  std::map<std::string, double> offsets;
  if (!args.offsets_path.empty()) offsets = load_offsets(args.offsets_path);

  std::vector<PartyView> parties;
  for (const std::string& path : args.rings) parties.push_back(load_party(path));
  const char* aligned_by = align_parties(parties, offsets);

  for (PartyView& view : parties) {
    if (!view.ring.records.empty()) {
      view.last_aligned_us = view.aligned_us(view.ring.records.back().t_us);
    }
  }

  // First to die: among the parties that never said goodbye, the earliest
  // last record on the aligned clock. A silent death outranks an error
  // exit — survivors that merely *noticed* the death exit later with
  // transport errors of their own.
  const PartyView* first_dead = nullptr;
  for (const PartyView& view : parties) {
    if (view.clean_shutdown) continue;
    const bool better =
        first_dead == nullptr ||
        (view.died_silently() && !first_dead->died_silently()) ||
        (view.died_silently() == first_dead->died_silently() &&
         view.last_aligned_us < first_dead->last_aligned_us);
    if (better) first_dead = &view;
  }
  const double death_us = first_dead != nullptr ? first_dead->last_aligned_us : 0;
  const double window_us = args.window_s * 1e6;

  if (args.json) {
    std::ostringstream os;
    os << "{\"schema_version\":1,\"aligned_by\":\"" << aligned_by << "\",\"parties\":[";
    for (std::size_t i = 0; i < parties.size(); ++i) {
      const PartyView& view = parties[i];
      os << (i == 0 ? "" : ",") << "{\"party\":\"" << json::escape(view.party)
         << "\",\"path\":\"" << json::escape(view.path)
         << "\",\"records\":" << view.ring.records.size()
         << ",\"records_written\":" << view.ring.info.records_written
         << ",\"records_dropped\":" << view.ring.info.records_dropped
         << ",\"crc_rejects\":" << view.ring.crc_rejects
         << ",\"valid\":" << (view.problems.empty() ? "true" : "false")
         << ",\"problems\":[";
      for (std::size_t j = 0; j < view.problems.size(); ++j) {
        os << (j == 0 ? "" : ",") << "\"" << json::escape(view.problems[j]) << "\"";
      }
      os << "],\"clean_shutdown\":" << (view.clean_shutdown ? "true" : "false")
         << ",\"crashed\":" << (view.crash.has_value() ? "true" : "false")
         << ",\"died_silently\":" << (view.died_silently() ? "true" : "false")
         << ",\"last_round\":" << view.last_round << ",\"last_phase\":\""
         << phase_name(view.last_phase) << "\",\"alerts\":" << view.alerts
         << ",\"last_aligned_us\":" << json::safe_num(view.last_aligned_us)
         << ",\"net_events\":{";
      bool first = true;
      for (const auto& [kind, count] : view.net_events) {
        os << (first ? "" : ",") << "\"" << kind << "\":" << count;
        first = false;
      }
      os << "}}";
    }
    os << "],\"first_dead\":";
    if (first_dead != nullptr) {
      os << "\"" << json::escape(first_dead->party) << "\",\"first_dead_last_round\":"
         << first_dead->last_round << ",\"first_dead_last_phase\":\""
         << phase_name(first_dead->last_phase) << "\"";
    } else {
      os << "null";
    }
    os << "}";
    std::printf("%s\n", os.str().c_str());
    return first_dead != nullptr ? 3 : 0;
  }

  // --- human report ---------------------------------------------------------------
  std::printf("gtv-postmortem: %zu ring(s), aligned by %s\n\n", parties.size(),
              aligned_by);
  std::printf("%-10s %8s %8s %8s  %s\n", "party", "records", "rejects", "round",
              "status");
  for (const PartyView& view : parties) {
    std::printf("%-10s %8zu %8llu %8llu  %s\n", view.party.c_str(),
                view.ring.records.size(),
                static_cast<unsigned long long>(view.ring.crc_rejects),
                static_cast<unsigned long long>(view.last_round),
                party_status(view).c_str());
    for (const std::string& problem : view.problems) {
      std::printf("           ! %s\n", problem.c_str());
    }
  }

  if (first_dead == nullptr) {
    std::printf("\nall parties shut down cleanly — nothing to blame.\n");
    return 0;
  }

  std::printf("\nprobable cause:\n");
  std::printf("  first to die: %s — %s\n", first_dead->party.c_str(),
              party_status(*first_dead).c_str());
  std::printf("    last seen: round %llu, phase %s\n",
              static_cast<unsigned long long>(first_dead->last_round),
              phase_name(first_dead->last_phase));
  if (first_dead->stall.has_value()) {
    std::printf("    watchdog: stalled %llums at round %llu before death\n",
                static_cast<unsigned long long>(first_dead->stall->stalled_ms),
                static_cast<unsigned long long>(first_dead->stall->round));
  }

  // Alerts and transport events in the window before death, anywhere.
  std::printf("  in the %.1fs before death:\n", args.window_s);
  bool context = false;
  for (const PartyView& view : parties) {
    for (const bb::Record& rec : view.ring.records) {
      if (rec.type != bb::RecordType::kAlert && rec.type != bb::RecordType::kNetEvent) {
        continue;
      }
      const double at = view.aligned_us(rec.t_us);
      if (at > death_us || at + window_us < death_us) continue;
      std::printf("    [%8.3fs] %-10s %s\n", (at - death_us) / 1e6, view.party.c_str(),
                  describe(rec).c_str());
      context = true;
    }
  }
  if (!context) std::printf("    (none recorded)\n");

  // What the survivors saw after the death: the link-level smoking gun.
  std::printf("  after the death:\n");
  context = false;
  for (const PartyView& view : parties) {
    if (&view == first_dead) continue;
    for (const bb::Record& rec : view.ring.records) {
      if (rec.type != bb::RecordType::kNetEvent) continue;
      const double at = view.aligned_us(rec.t_us);
      if (at < death_us || at > death_us + window_us) continue;
      std::printf("    [%+8.3fs] %-10s %s\n", (at - death_us) / 1e6, view.party.c_str(),
                  describe(rec).c_str());
      context = true;
    }
  }
  if (!context) std::printf("    (no transport events recorded)\n");

  std::printf("\ntimeline (last %.1fs before death):\n", args.window_s);
  struct Entry {
    double at;
    const PartyView* view;
    const bb::Record* rec;
  };
  std::vector<Entry> entries;
  for (const PartyView& view : parties) {
    for (const bb::Record& rec : view.ring.records) {
      const double at = view.aligned_us(rec.t_us);
      if (at > death_us + window_us || at + window_us < death_us) continue;
      entries.push_back({at, &view, &rec});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.at < b.at; });
  for (const Entry& entry : entries) {
    std::printf("  [%+9.3fs] %-10s #%llu %s\n", (entry.at - death_us) / 1e6,
                entry.view->party.c_str(),
                static_cast<unsigned long long>(entry.rec->seq),
                describe(*entry.rec).c_str());
  }
  return 3;  // something died: distinct from usage (2) and I/O errors (1)
}

// --- bench mode -------------------------------------------------------------------

int run_bench(const Args& args) {
  bb::RunHeaderRecord header;
  header.party = "bench";
  bb::BlackBoxOptions options;
  bb::BlackBox box(args.bench_path, header, options);

  std::vector<double> append_us;
  append_us.reserve(args.bench_records);
  const auto start = std::chrono::steady_clock::now();
  std::uint8_t buf[64];
  for (std::size_t i = 0; i < args.bench_records; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const bb::PhaseRecord rec{i, static_cast<std::uint32_t>(i % 6)};
    box.append(bb::RecordType::kPhase, buf, rec.encode(buf, sizeof(buf)));
    const auto t1 = std::chrono::steady_clock::now();
    append_us.push_back(std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double total_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start).count();
  box.sync();

  std::sort(append_us.begin(), append_us.end());
  auto pct = [&](double p) {
    if (append_us.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(p / 100.0 *
                                                     (append_us.size() - 1));
    return append_us[idx];
  };

  // Read the ring back: the bench doubles as an end-to-end validity check.
  // The bench intentionally overruns the ring to exercise the wrap path, so
  // the run-header record is legitimately evicted — that one complaint is
  // expected; anything else (CRC rejects, seq gaps, dup seqs) is a failure.
  const bb::ReadResult ring = bb::read_ring(args.bench_path);
  std::vector<std::string> problems = bb::validate(ring);
  const bool wrapped = ring.records.size() < args.bench_records;
  if (wrapped) {
    problems.erase(std::remove_if(problems.begin(), problems.end(),
                                  [](const std::string& p) {
                                    return p.find("run header") !=
                                           std::string::npos;
                                  }),
                   problems.end());
  }

  std::printf("{\"records\":%zu,\"records_per_sec\":%.0f,\"write_p50_us\":%.3f,"
              "\"write_p99_us\":%.3f,\"total_s\":%.6f,\"retained\":%zu,"
              "\"crc_rejects\":%llu,\"valid\":%s}\n",
              args.bench_records, args.bench_records / total_s, pct(50), pct(99),
              total_s, ring.records.size(),
              static_cast<unsigned long long>(ring.crc_rejects),
              problems.empty() ? "true" : "false");
  return problems.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    return args.bench ? run_bench(args) : run_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtv-postmortem: %s\n", e.what());
    return 1;
  }
}
