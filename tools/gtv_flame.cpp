// gtv-flame: merge, diff, and render the folded profiles written by
// `gtv-node --sample-hz` (see obs/sampler.h for the on-disk format).
//
//   gtv-flame run/*.folded --out merged.folded      merged folded text
//   gtv-flame run/*.folded --svg flame.svg          self-contained flamegraph
//   gtv-flame run/*.folded --json                   machine-readable summary
//   gtv-flame run/*.folded --base before/*.folded   diff (count deltas)
//   gtv-flame run/*.folded --offsets offsets.json   annotate party clock skew
//
// Each input line is `party;state;phase;thread;frame;...;leaf N` with state
// cpu or offcpu; merging is summation keyed by the full stack, so profiles
// from N parties of one run (or N runs of one party) concatenate losslessly.
// With --base, counts become (current - base): positive means the stack got
// hotter. The SVG is a single static file — no external scripts or fonts —
// with per-rect <title> tooltips; in diff mode rect colour encodes the sign
// of the delta while width tracks the current profile.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace {

struct Options {
  std::vector<std::string> inputs;
  std::vector<std::string> base_inputs;
  std::string out_path;      // merged folded text ("-" = stdout)
  std::string svg_path;      // flamegraph
  std::string offsets_path;  // driver-written offsets.json
  bool json = false;
  std::string state_filter;  // "", "cpu", or "offcpu"
  int top = 10;              // top-self entries in --json
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "gtv-flame: %s\n", msg);
  std::fprintf(stderr,
               "usage: gtv-flame FILE.folded [FILE...]\n"
               "  [--out PATH|-] [--svg PATH] [--json] [--base FILE[,FILE...]]\n"
               "  [--offsets offsets.json] [--state cpu|offcpu] [--top N]\n");
  std::exit(2);
}

// One merged profile: stack -> summed count, plus per-file header metadata.
struct Profile {
  // Stack is root-first, already prefixed party;state;phase;thread.
  std::map<std::vector<std::string>, std::int64_t> stacks;
  std::set<std::string> parties;
  std::uint64_t cpu_samples = 0;
  std::uint64_t offcpu_samples = 0;
  std::uint64_t dropped = 0;
  std::size_t files = 0;
};

std::vector<std::string> split_stack(const std::string& text) {
  std::vector<std::string> frames;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) {
      frames.push_back(text.substr(start));
      break;
    }
    frames.push_back(text.substr(start, semi - start));
    start = semi + 1;
  }
  return frames;
}

// Loads one folded file into `out`. Unknown `#` headers are skipped so the
// reader tolerates future format additions; a bad magic line is fatal.
bool load_folded(const std::string& path, Profile* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gtv-flame: cannot open %s\n", path.c_str());
    return false;
  }
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {
      first = false;
      if (line.rfind("# gtv-folded ", 0) != 0) {
        std::fprintf(stderr, "gtv-flame: %s: not a gtv folded profile\n", path.c_str());
        return false;
      }
      continue;
    }
    if (line[0] == '#') {
      std::istringstream hdr(line.substr(1));
      std::string key, value;
      hdr >> key >> value;
      if (key == "party") out->parties.insert(value);
      else if (key == "cpu_samples") out->cpu_samples += std::strtoull(value.c_str(), nullptr, 10);
      else if (key == "offcpu_samples") out->offcpu_samples += std::strtoull(value.c_str(), nullptr, 10);
      else if (key == "dropped") out->dropped += std::strtoull(value.c_str(), nullptr, 10);
      continue;
    }
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::int64_t count = std::strtoll(line.c_str() + space + 1, nullptr, 10);
    if (count == 0) continue;
    std::vector<std::string> frames = split_stack(line.substr(0, space));
    if (frames.size() < 4) continue;  // party;state;phase;thread prefix missing
    out->parties.insert(frames[0]);
    out->stacks[std::move(frames)] += count;
  }
  ++out->files;
  return true;
}

// The first four frames are synthetic tags, not code locations.
constexpr std::size_t kPrefixFrames = 4;
constexpr std::size_t kStateFrame = 1;

bool state_matches(const std::vector<std::string>& frames, const std::string& filter) {
  return filter.empty() || frames[kStateFrame] == filter;
}

// --- clock offsets annotation ---------------------------------------------------

// Minimal scanner for the driver's offsets.json:
// {"schema_version":1,"reference":"driver","offsets":{"p":{"offset_us":N,...}}}
std::vector<std::pair<std::string, double>> load_offsets(const std::string& path) {
  std::vector<std::pair<std::string, double>> offsets;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gtv-flame: cannot open %s\n", path.c_str());
    return offsets;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::size_t pos = 0;
  while ((pos = text.find("\"offset_us\":", pos)) != std::string::npos) {
    // Party name is the nearest quoted key before this object.
    const std::size_t obj = text.rfind('{', pos);
    if (obj == std::string::npos || obj < 2) break;
    const std::size_t name_end = text.rfind('"', obj);
    const std::size_t name_start =
        name_end == std::string::npos ? std::string::npos : text.rfind('"', name_end - 1);
    if (name_start == std::string::npos) break;
    const std::string party = text.substr(name_start + 1, name_end - name_start - 1);
    const double us = std::strtod(text.c_str() + pos + std::strlen("\"offset_us\":"), nullptr);
    if (party != "offsets") offsets.emplace_back(party, us);
    pos += 12;
  }
  return offsets;
}

// --- folded text output ---------------------------------------------------------

void write_folded_text(std::FILE* f, const Profile& prof, const Profile* base,
                       const Options& opt,
                       const std::vector<std::pair<std::string, double>>& offsets) {
  std::fprintf(f, "# gtv-folded %d\n", gtv::obs::sampler::kFoldedFormatVersion);
  std::string parties;
  for (const auto& p : prof.parties) parties += (parties.empty() ? "" : ",") + p;
  std::fprintf(f, "# merged_parties %s\n", parties.c_str());
  std::fprintf(f, "# files %zu\n", prof.files);
  std::fprintf(f, "# cpu_samples %llu\n# offcpu_samples %llu\n# dropped %llu\n",
               static_cast<unsigned long long>(prof.cpu_samples),
               static_cast<unsigned long long>(prof.offcpu_samples),
               static_cast<unsigned long long>(prof.dropped));
  if (base != nullptr) std::fprintf(f, "# diff_base_files %zu\n", base->files);
  for (const auto& [party, us] : offsets) {
    std::fprintf(f, "# clock_offset_us %s %.3f\n", party.c_str(), us);
  }
  // Emit current-profile stacks (with deltas when diffing), then base-only
  // stacks that disappeared entirely, as pure negatives.
  for (const auto& [frames, count] : prof.stacks) {
    if (!state_matches(frames, opt.state_filter)) continue;
    std::int64_t value = count;
    if (base != nullptr) {
      const auto it = base->stacks.find(frames);
      value -= it == base->stacks.end() ? 0 : it->second;
      if (value == 0) continue;
    }
    std::string joined;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i != 0) joined += ';';
      joined += frames[i];
    }
    std::fprintf(f, "%s %lld\n", joined.c_str(), static_cast<long long>(value));
  }
  if (base != nullptr) {
    for (const auto& [frames, count] : base->stacks) {
      if (!state_matches(frames, opt.state_filter)) continue;
      if (prof.stacks.count(frames) != 0) continue;
      std::string joined;
      for (std::size_t i = 0; i < frames.size(); ++i) {
        if (i != 0) joined += ';';
        joined += frames[i];
      }
      std::fprintf(f, "%s %lld\n", joined.c_str(), static_cast<long long>(-count));
    }
  }
}

// --- SVG flamegraph -------------------------------------------------------------

struct FlameNode {
  std::string name;
  std::int64_t total = 0;  // current-profile samples in this subtree
  std::int64_t delta = 0;  // (current - base), diff mode only
  std::map<std::string, std::unique_ptr<FlameNode>> children;
};

void insert_stack(FlameNode* root, const std::vector<std::string>& frames,
                  std::int64_t count, std::int64_t delta) {
  FlameNode* node = root;
  node->total += count;
  node->delta += delta;
  for (const auto& frame : frames) {
    auto& child = node->children[frame];
    if (!child) {
      child = std::make_unique<FlameNode>();
      child->name = frame;
    }
    node = child.get();
    node->total += count;
    node->delta += delta;
  }
}

std::string xml_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Deterministic warm palette keyed by the frame name; off-CPU subtrees get a
// cool palette so the two halves of a mixed profile read at a glance.
std::string fill_color(const std::string& name, bool offcpu, std::int64_t delta,
                       bool diff_mode) {
  std::uint32_t h = 2166136261u;
  for (const char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  const int jitter = static_cast<int>(h % 50);
  char buf[32];
  if (diff_mode) {
    // Red = hotter than base, blue = cooler, grey = unchanged.
    if (delta > 0) std::snprintf(buf, sizeof buf, "rgb(230,%d,%d)", 90 + jitter, 70);
    else if (delta < 0) std::snprintf(buf, sizeof buf, "rgb(%d,%d,235)", 80, 120 + jitter);
    else std::snprintf(buf, sizeof buf, "rgb(190,190,190)");
  } else if (offcpu) {
    std::snprintf(buf, sizeof buf, "rgb(%d,%d,235)", 90 + jitter, 140 + jitter);
  } else {
    std::snprintf(buf, sizeof buf, "rgb(235,%d,%d)", 120 + jitter, 40 + jitter / 2);
  }
  return buf;
}

struct SvgEmitter {
  std::FILE* f = nullptr;
  double width = 1200.0;
  double row_h = 16.0;
  std::int64_t root_total = 1;
  bool diff_mode = false;
  int max_depth = 0;

  void emit(const FlameNode& node, double x, int depth, bool offcpu_branch) {
    const double w = width * static_cast<double>(node.total) / static_cast<double>(root_total);
    if (w < 0.25) return;  // sub-pixel: skip subtree
    max_depth = std::max(max_depth, depth);
    const double y = 40.0 + depth * row_h;
    const bool offcpu = offcpu_branch || node.name == "offcpu";
    const double pct = 100.0 * static_cast<double>(node.total) / static_cast<double>(root_total);
    std::fprintf(f,
                 "<g><title>%s — %lld samples (%.2f%%)%s</title>"
                 "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" "
                 "fill=\"%s\" rx=\"1\"/>",
                 xml_escape(node.name).c_str(), static_cast<long long>(node.total), pct,
                 diff_mode ? (" delta " + std::to_string(node.delta)).c_str() : "",
                 x, y, w - 0.5, row_h - 1.0,
                 fill_color(node.name, offcpu, node.delta, diff_mode).c_str());
    if (w > 30.0) {
      std::string label = node.name;
      const std::size_t fit = static_cast<std::size_t>(w / 6.5);
      if (label.size() > fit) label = label.substr(0, fit > 2 ? fit - 2 : 0) + "..";
      std::fprintf(f,
                   "<text x=\"%.2f\" y=\"%.2f\" font-size=\"10\" "
                   "font-family=\"monospace\" fill=\"#111\">%s</text>",
                   x + 2.0, y + row_h - 4.5, xml_escape(label).c_str());
    }
    std::fprintf(f, "</g>\n");
    double cx = x;
    for (const auto& [name, child] : node.children) {
      emit(*child, cx, depth + 1, offcpu);
      cx += width * static_cast<double>(child->total) / static_cast<double>(root_total);
    }
  }
};

int tree_depth(const FlameNode& node) {
  int deepest = 0;
  for (const auto& [name, child] : node.children) {
    deepest = std::max(deepest, tree_depth(*child));
  }
  return deepest + 1;
}

bool write_svg(const std::string& path, const Profile& prof, const Profile* base,
               const Options& opt) {
  FlameNode root;
  root.name = "all";
  for (const auto& [frames, count] : prof.stacks) {
    if (!state_matches(frames, opt.state_filter)) continue;
    std::int64_t delta = count;
    if (base != nullptr) {
      const auto it = base->stacks.find(frames);
      delta -= it == base->stacks.end() ? 0 : it->second;
    }
    // Drop the leading party tag from the tree (it's in the per-rect title
    // via the thread frame anyway) but keep state/phase/thread so on-CPU and
    // off-CPU time split into separate towers.
    std::vector<std::string> tree_frames(frames.begin() + 1, frames.end());
    tree_frames[0] += ":" + frames[0];  // e.g. cpu:client0
    insert_stack(&root, tree_frames, count, base != nullptr ? delta : 0);
  }
  if (root.total == 0) {
    std::fprintf(stderr, "gtv-flame: no samples to render\n");
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "gtv-flame: cannot write %s\n", path.c_str());
    return false;
  }
  SvgEmitter svg;
  svg.f = f;
  svg.root_total = root.total;
  svg.diff_mode = base != nullptr;
  const int depth = tree_depth(root);
  const double height = 40.0 + (depth + 1) * svg.row_h + 24.0;
  std::fprintf(f,
               "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" "
               "viewBox=\"0 0 %.0f %.0f\">\n"
               "<rect width=\"100%%\" height=\"100%%\" fill=\"#fdfdfd\"/>\n"
               "<text x=\"8\" y=\"20\" font-size=\"14\" font-family=\"monospace\">"
               "gtv-flame%s — %lld samples, %zu file(s)</text>\n"
               "<text x=\"8\" y=\"34\" font-size=\"10\" font-family=\"monospace\" "
               "fill=\"#555\">warm = on-CPU, cool = off-CPU%s; hover for counts</text>\n",
               svg.width, height, svg.width, height,
               svg.diff_mode ? " (diff vs base)" : "",
               static_cast<long long>(root.total), prof.files,
               svg.diff_mode ? "; red = hotter than base, blue = cooler" : "");
  svg.emit(root, 0.0, 0, false);
  std::fprintf(f, "</svg>\n");
  std::fclose(f);
  return true;
}

// --- JSON summary ---------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') { out += '\\'; out += c; }
    else if (static_cast<unsigned char>(c) < 0x20) out += ' ';
    else out += c;
  }
  return out;
}

void write_json(const Profile& prof, const Profile* base, const Options& opt,
                const std::vector<std::pair<std::string, double>>& offsets) {
  // Frame resolution and self-time are measured over real code frames only —
  // the party/state/phase/thread prefix is synthetic and always "resolves".
  std::uint64_t frames_total = 0, frames_resolved = 0;
  std::int64_t total = 0, cpu = 0, offcpu = 0;
  // key: (frame, state) -> self samples (leaf attribution).
  std::map<std::pair<std::string, std::string>, std::int64_t> self;
  for (const auto& [frames, count] : prof.stacks) {
    if (!state_matches(frames, opt.state_filter)) continue;
    total += count;
    (frames[kStateFrame] == "offcpu" ? offcpu : cpu) += count;
    for (std::size_t i = kPrefixFrames; i < frames.size(); ++i) {
      frames_total += static_cast<std::uint64_t>(count);
      if (gtv::obs::sampler::frame_is_resolved(frames[i])) {
        frames_resolved += static_cast<std::uint64_t>(count);
      }
    }
    if (frames.size() > kPrefixFrames) {
      self[{frames.back(), frames[kStateFrame]}] += count;
    }
  }
  std::vector<std::pair<std::pair<std::string, std::string>, std::int64_t>> ranked(
      self.begin(), self.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > static_cast<std::size_t>(opt.top)) ranked.resize(opt.top);

  std::printf("{\n  \"files\": %zu,\n  \"parties\": [", prof.files);
  bool first = true;
  for (const auto& party : prof.parties) {
    std::printf("%s\"%s\"", first ? "" : ", ", json_escape(party).c_str());
    first = false;
  }
  const double resolved_frac =
      frames_total == 0 ? 0.0
                        : static_cast<double>(frames_resolved) / static_cast<double>(frames_total);
  std::printf("],\n  \"total_samples\": %lld,\n  \"cpu_samples\": %lld,\n"
              "  \"offcpu_samples\": %lld,\n  \"dropped\": %llu,\n"
              "  \"unique_stacks\": %zu,\n  \"frames_total\": %llu,\n"
              "  \"frames_resolved\": %llu,\n  \"resolved_frac\": %.4f,\n",
              static_cast<long long>(total), static_cast<long long>(cpu),
              static_cast<long long>(offcpu),
              static_cast<unsigned long long>(prof.dropped), prof.stacks.size(),
              static_cast<unsigned long long>(frames_total),
              static_cast<unsigned long long>(frames_resolved), resolved_frac);
  if (base != nullptr) {
    std::int64_t base_total = 0;
    for (const auto& [frames, count] : base->stacks) {
      if (state_matches(frames, opt.state_filter)) base_total += count;
    }
    std::printf("  \"base_total_samples\": %lld,\n", static_cast<long long>(base_total));
  }
  if (!offsets.empty()) {
    std::printf("  \"clock_offsets_us\": {");
    first = true;
    for (const auto& [party, us] : offsets) {
      std::printf("%s\"%s\": %.3f", first ? "" : ", ", json_escape(party).c_str(), us);
      first = false;
    }
    std::printf("},\n");
  }
  std::printf("  \"top_self\": [");
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    std::printf("%s\n    {\"frame\": \"%s\", \"state\": \"%s\", \"self_samples\": %lld}",
                i == 0 ? "" : ",", json_escape(ranked[i].first.first).c_str(),
                ranked[i].first.second.c_str(),
                static_cast<long long>(ranked[i].second));
  }
  std::printf("\n  ]\n}\n");
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&](const char* name) -> std::string {
      if (i + 1 >= argc) usage((std::string(name) + " needs a value").c_str());
      return argv[++i];
    };
    if (flag == "--out") opt.out_path = value("--out");
    else if (flag == "--svg") opt.svg_path = value("--svg");
    else if (flag == "--json") opt.json = true;
    else if (flag == "--offsets") opt.offsets_path = value("--offsets");
    else if (flag == "--top") opt.top = std::atoi(value("--top").c_str());
    else if (flag == "--state") {
      opt.state_filter = value("--state");
      if (opt.state_filter != "cpu" && opt.state_filter != "offcpu") {
        usage("--state must be cpu or offcpu");
      }
    } else if (flag == "--base") {
      std::stringstream list(value("--base"));
      std::string item;
      while (std::getline(list, item, ',')) {
        if (!item.empty()) opt.base_inputs.push_back(item);
      }
    } else if (flag == "--help" || flag == "-h") {
      usage(nullptr);
    } else if (!flag.empty() && flag[0] == '-') {
      usage(("unknown option " + flag).c_str());
    } else {
      opt.inputs.push_back(flag);
    }
  }
  if (opt.inputs.empty()) usage("no input files");
  if (opt.top < 1) opt.top = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  Profile prof;
  for (const auto& path : opt.inputs) {
    if (!load_folded(path, &prof)) return 1;
  }
  Profile base;
  for (const auto& path : opt.base_inputs) {
    if (!load_folded(path, &base)) return 1;
  }
  const Profile* base_ptr = opt.base_inputs.empty() ? nullptr : &base;
  std::vector<std::pair<std::string, double>> offsets;
  if (!opt.offsets_path.empty()) offsets = load_offsets(opt.offsets_path);

  int rc = 0;
  if (!opt.svg_path.empty() && !write_svg(opt.svg_path, prof, base_ptr, opt)) rc = 1;
  if (!opt.out_path.empty()) {
    if (opt.out_path == "-") {
      write_folded_text(stdout, prof, base_ptr, opt, offsets);
    } else {
      std::FILE* f = std::fopen(opt.out_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "gtv-flame: cannot write %s\n", opt.out_path.c_str());
        rc = 1;
      } else {
        write_folded_text(f, prof, base_ptr, opt, offsets);
        std::fclose(f);
      }
    }
  }
  if (opt.json) write_json(prof, base_ptr, opt, offsets);
  if (opt.out_path.empty() && opt.svg_path.empty() && !opt.json) {
    // Bare invocation: merged folded text to stdout, ready to pipe onward.
    write_folded_text(stdout, prof, base_ptr, opt, offsets);
  }
  return rc;
}
