// gtv-serve — batched synthesis-serving daemon for GTV checkpoints.
//
// Daemon mode loads a versioned checkpoint container (written by
// gtv-node --checkpoint-out or GtvTrainer::save_checkpoint) and serves
// seeded SampleRequests over the gtv::net framed transport, coalescing
// concurrent clients into single generator forwards:
//
//   gtv-serve --checkpoint model.ckpt --port 47540
//     [--max-batch N] [--max-wait-us N]
//     [--metrics-port P]      (in-process /metrics + /status endpoint)
//     [--blackbox-dir DIR]    (flight recorder: <dir>/serve.bbox)
//     [--sample-hz HZ] [--profile-dir DIR]
//
// SIGTERM/SIGINT drain gracefully: admitted requests finish, new ones are
// refused, the black box gets a clean shutdown record, and the JSON
// summary still prints. Client mode sends one seeded request:
//
//   gtv-serve --connect 127.0.0.1:47540 --rows 1000 --seed 42
//     [--cond column=category] [--name alice] [--csv]
//
// A seeded request is byte-identical across runs and across batching —
// the daemon's coalescing cannot perturb any client's stream.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/table.h"
#include "net/tcp.h"
#include "obs/agg.h"
#include "obs/blackbox.h"
#include "obs/sampler.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"
#include "serve/daemon.h"
#include "serve/engine.h"

namespace {

using namespace gtv;

struct Args {
  // Daemon mode.
  std::string checkpoint;
  int port = 47540;
  std::size_t max_batch = 1024;
  int max_wait_us = 2000;
  int metrics_port = 0;
  std::string blackbox_dir;
  int sample_hz = 0;
  std::string profile_dir = ".";
  // Client mode.
  std::string connect;  // host:port
  std::size_t rows = 100;
  std::uint64_t seed = 42;
  std::string cond;  // column=category
  std::string name = "client";
  bool csv = false;
};

[[noreturn]] void usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "gtv-serve: %s\n", msg);
  std::fprintf(stderr,
               "usage (daemon): gtv-serve --checkpoint FILE [--port P]\n"
               "  [--max-batch N] [--max-wait-us N] [--metrics-port P]\n"
               "  [--blackbox-dir DIR] [--sample-hz HZ] [--profile-dir DIR]\n"
               "usage (client): gtv-serve --connect HOST:PORT [--rows N] [--seed S]\n"
               "  [--cond column=category] [--name NAME] [--csv]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--checkpoint") {
      args.checkpoint = value(i);
    } else if (flag == "--port") {
      args.port = std::atoi(value(i));
    } else if (flag == "--max-batch") {
      args.max_batch = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--max-wait-us") {
      args.max_wait_us = std::atoi(value(i));
    } else if (flag == "--metrics-port") {
      args.metrics_port = std::atoi(value(i));
    } else if (flag == "--blackbox-dir") {
      args.blackbox_dir = value(i);
    } else if (flag == "--sample-hz") {
      args.sample_hz = std::atoi(value(i));
    } else if (flag == "--profile-dir") {
      args.profile_dir = value(i);
    } else if (flag == "--connect") {
      args.connect = value(i);
    } else if (flag == "--rows") {
      args.rows = std::strtoul(value(i), nullptr, 10);
    } else if (flag == "--seed") {
      args.seed = std::strtoull(value(i), nullptr, 10);
    } else if (flag == "--cond") {
      args.cond = value(i);
    } else if (flag == "--name") {
      args.name = value(i);
    } else if (flag == "--csv") {
      args.csv = true;
    } else {
      usage(("unknown option " + flag).c_str());
    }
  }
  if (args.checkpoint.empty() == args.connect.empty()) {
    usage("exactly one of --checkpoint (daemon) or --connect (client) is required");
  }
  return args;
}

int run_daemon(const Args& args) {
  if (!args.blackbox_dir.empty()) {
    obs::bb::RunHeaderRecord header;
    header.party = serve::kServeParty;
    obs::bb::BlackBox::open_global(args.blackbox_dir + "/serve.bbox", header);
    obs::bb::install_crash_handlers();
  }
  serve::install_drain_handler();

  const serve::Checkpoint checkpoint = serve::load_checkpoint(args.checkpoint);
  serve::Synthesizer synth(checkpoint);
  std::fprintf(stderr,
               "gtv-serve: loaded %s (model %016llx, %zu clients, %zu columns)\n",
               args.checkpoint.c_str(),
               static_cast<unsigned long long>(synth.model_hash()),
               synth.n_clients(), synth.n_cols());

  obs::TraceSink::instance().declare_party(98, serve::kServeParty);
  auto transport = std::make_shared<net::TcpTransport>(serve::kServeParty);
  const std::uint16_t port = transport->listen(static_cast<std::uint16_t>(args.port));
  std::fprintf(stderr, "gtv-serve: listening on port %u\n", port);

  // Self-contained telemetry plane: a serving process has no driver to host
  // the Collector, so it runs its own and publishes into it on loopback.
  obs::agg::LiveStatus status;
  std::unique_ptr<obs::agg::Collector> collector;
  std::unique_ptr<obs::agg::SnapshotPublisher> publisher;
  if (args.metrics_port > 0) {
    collector = std::make_unique<obs::agg::Collector>();
    const std::uint16_t collector_port = collector->listen(0);
    collector->serve_http(static_cast<std::uint16_t>(args.metrics_port));
    publisher = std::make_unique<obs::agg::SnapshotPublisher>(
        serve::kServeParty, "127.0.0.1", collector_port);
    publisher->set_status(&status);
    publisher->start();
    std::fprintf(stderr, "gtv-serve: /metrics on port %d\n", args.metrics_port);
  }

  obs::sampler::Sampler* prof = nullptr;
  if (args.sample_hz > 0) {
    obs::sampler::SamplerOptions options;
    options.cpu_hz = args.sample_hz;
    options.phase_name = [](std::uint32_t phase) {
      return obs::agg::to_string(static_cast<obs::agg::Phase>(phase));
    };
    prof = obs::sampler::Sampler::start_global(options, &status.round, &status.phase);
  }

  serve::DaemonOptions options;
  options.max_batch = args.max_batch;
  options.max_wait_us = args.max_wait_us;
  options.status = &status;
  serve::ServeDaemon daemon(synth, options);
  daemon.set_transport(transport);
  daemon.start();
  daemon.watch_peers(transport.get());

  // Park until SIGTERM/SIGINT; the handler only latches a flag so the
  // drain runs on this thread with everything still alive.
  while (!serve::drain_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "gtv-serve: drain requested\n");
  daemon.drain();
  if (publisher) publisher->stop();
  if (prof != nullptr) {
    prof->stop();
    prof->write_folded((args.profile_dir.empty() ? "." : args.profile_dir) +
                           "/serve.folded",
                       serve::kServeParty);
  }

  const serve::ServeStats stats = daemon.stats();
  std::printf("{\n  \"role\": \"serve\",\n  \"checkpoint\": \"%s\",\n"
              "  \"model_hash\": \"%016llx\",\n  \"port\": %u,\n"
              "  \"requests\": %llu,\n  \"rows\": %llu,\n  \"batches\": %llu,\n"
              "  \"errors\": %llu\n}\n",
              args.checkpoint.c_str(),
              static_cast<unsigned long long>(synth.model_hash()), port,
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.rows),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.errors));
  obs::bb::note_shutdown(0, "drained");
  return 0;
}

int run_client(const Args& args) {
  const std::size_t colon = args.connect.rfind(':');
  if (colon == std::string::npos) usage("--connect wants HOST:PORT");
  const std::string host = args.connect.substr(0, colon);
  const int port = std::atoi(args.connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) usage("bad port in --connect");

  serve::Synthesizer::Condition cond;
  const serve::Synthesizer::Condition* cond_ptr = nullptr;
  if (!args.cond.empty()) {
    const std::size_t eq = args.cond.find('=');
    if (eq == std::string::npos) usage("--cond wants column=category");
    cond.column = args.cond.substr(0, eq);
    cond.category = args.cond.substr(eq + 1);
    cond_ptr = &cond;
  }

  serve::ServeClient client(args.name);
  client.connect(host, static_cast<std::uint16_t>(port));
  const serve::Welcome welcome = client.hello();
  const auto t0 = std::chrono::steady_clock::now();
  const serve::ServeClient::Result result = client.sample(args.rows, args.seed, cond_ptr);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0).count();

  if (args.csv) {
    // Header row is "name:<type>" tokens straight from the welcome.
    for (std::size_t c = 0; c < welcome.columns.size(); ++c) {
      std::printf("%s%s", c == 0 ? "" : ",", welcome.columns[c].c_str());
    }
    std::printf("\n");
    for (std::uint64_t r = 0; r < result.n_rows; ++r) {
      for (std::uint64_t c = 0; c < result.n_cols; ++c) {
        std::printf("%s%.17g", c == 0 ? "" : ",", result.cells[r * result.n_cols + c]);
      }
      std::printf("\n");
    }
    return 0;
  }
  std::printf("{\n  \"role\": \"client\",\n  \"model_hash\": \"%016llx\",\n"
              "  \"columns\": %zu,\n  \"rows\": %llu,\n  \"batches\": %llu,\n"
              "  \"seed\": %llu,\n  \"elapsed_ms\": %.3f,\n  \"cells_hash\": \"%016llx\"\n}\n",
              static_cast<unsigned long long>(welcome.model_hash),
              welcome.columns.size(),
              static_cast<unsigned long long>(result.n_rows),
              static_cast<unsigned long long>(result.batches),
              static_cast<unsigned long long>(args.seed), ms,
              static_cast<unsigned long long>([&result] {
                // FNV-1a over the received cells: lets smoke tests compare
                // two runs without storing the full payload.
                std::uint64_t h = 0xcbf29ce484222325ULL;
                auto mix = [&h](std::uint64_t v) {
                  for (int i = 0; i < 8; ++i) {
                    h ^= (v >> (8 * i)) & 0xffu;
                    h *= 0x100000001b3ULL;
                  }
                };
                mix(result.n_rows);
                mix(result.n_cols);
                for (const double cell : result.cells) {
                  std::uint64_t bits;
                  std::memcpy(&bits, &cell, 8);
                  mix(bits);
                }
                return h;
              }()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    return args.connect.empty() ? run_daemon(args) : run_client(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gtv-serve: %s\n", e.what());
    obs::bb::note_shutdown(1, e.what());
    return 1;
  }
}
