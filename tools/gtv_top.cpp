// gtv-top — live terminal view of a federated GTV training run.
//
// Attaches to a Collector's HTTP endpoint (tools/gtv-node --metrics-port)
// and refreshes a per-party table: round progress, phase, losses, bytes
// and retries/timeouts on the training links, health alert counts, clock
// offset, and a staleness indicator for parties that stopped reporting.
//
//   gtv-top --port 9464 [--host 127.0.0.1] [--interval-ms 500]
//   gtv-top --port 9464 --once          # one frame, no screen clearing
//
// Exit codes: 0 on a clean run, 1 when the collector can never be reached
// (lets smoke tests poll "is the plane up yet" with --once).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 500;
  int frames = 0;  // 0 = until interrupted
  bool once = false;
  bool no_clear = false;
};

[[noreturn]] void usage(int code) {
  std::cout << "gtv-top: live view of a GTV federation via its Collector\n"
               "  --port N          collector HTTP port (required)\n"
               "  --host H          collector host (default 127.0.0.1)\n"
               "  --interval-ms N   refresh interval (default 500)\n"
               "  --frames N        stop after N refreshes (default: run forever)\n"
               "  --once            render a single frame and exit\n"
               "  --no-clear        append frames instead of redrawing in place\n";
  std::exit(code);
}

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "gtv-top: missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      args.host = next();
    } else if (arg == "--port") {
      args.port = std::stoi(next());
    } else if (arg == "--interval-ms") {
      args.interval_ms = std::stoi(next());
    } else if (arg == "--frames") {
      args.frames = std::stoi(next());
    } else if (arg == "--once") {
      args.once = true;
    } else if (arg == "--no-clear") {
      args.no_clear = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(0);
    } else {
      std::cerr << "gtv-top: unknown argument " << arg << "\n";
      std::exit(2);
    }
  }
  if (args.port <= 0) {
    std::cerr << "gtv-top: --port is required\n";
    std::exit(2);
  }
  return args;
}

// Minimal HTTP/1.0 GET; returns the response body or empty on any failure.
std::string http_get(const std::string& host, int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t w = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (w < 0 && errno == EINTR) continue;  // profiler signal; retry the send
    if (w <= 0) {
      ::close(fd);
      return {};
    }
    sent += static_cast<std::size_t>(w);
  }
  std::string response;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(3000);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) break;
    pollfd pfd{fd, POLLIN, 0};
    const int wait_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count());
    if (::poll(&pfd, 1, std::max(wait_ms, 1)) <= 0) break;
    char buf[4096];
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF: server closed after the body
    response.append(buf, static_cast<std::size_t>(r));
  }
  ::close(fd);
  const std::size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos || response.rfind("HTTP/", 0) != 0) return {};
  return response.substr(body + 4);
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 3) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f%s" : "%.1f%s", bytes, units[unit]);
  return buf;
}

// Sparkline over the (round, d_loss, g_loss) history; plots g_loss.
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (values.empty()) return "";
  const std::size_t start = values.size() > width ? values.size() - width : 0;
  double lo = values[start], hi = values[start];
  for (std::size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    const double norm = hi > lo ? (values[i] - lo) / (hi - lo) : 0.5;
    out += kBlocks[std::min<std::size_t>(7, static_cast<std::size_t>(norm * 7.999))];
  }
  return out;
}

std::string render(const gtv::obs::json::Value& status) {
  std::ostringstream out;
  const auto& collector = status.at("collector");
  out << "gtv-top — parties: " << collector.num_or("parties", 0)
      << "  uptime: " << static_cast<long>(collector.num_or("uptime_ms", 0) / 1000.0)
      << "s  snapshot latency p50/p99: " << collector.num_or("snapshot_latency_p50_ms", 0)
      << "/" << collector.num_or("snapshot_latency_p99_ms", 0) << " ms  bad frames: "
      << collector.num_or("bad_frames", 0) << "\n\n";
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-10s %-6s %-10s %-10s %10s %10s %9s %7s %7s %8s %10s %8s  %s\n",
                "PARTY", "STATE", "ROUND", "PHASE", "D_LOSS", "G_LOSS", "BYTES",
                "MSGS", "RETRY", "ALERTS", "OFFSET_US", "AGE_MS", "HOT");
  out << line;
  for (const auto& party : status.at("parties").array) {
    const auto& snap = party.at("snapshot");
    const bool stale = party.has("stale") && party.at("stale").boolean;
    const auto& alerts = snap.at("alerts");
    const std::string round = std::to_string(static_cast<long>(snap.num_or("round", 0))) +
                              "/" +
                              std::to_string(static_cast<long>(snap.num_or("rounds_total", 0)));
    const std::string alert_str =
        std::to_string(static_cast<long>(alerts.num_or("warn", 0))) + "w/" +
        std::to_string(static_cast<long>(alerts.num_or("fatal", 0)))
        + "f";
    const auto& clock = party.at("clock");
    char offset[32];
    if (clock.num_or("valid", 0) > 0 || (clock.has("valid") && clock.at("valid").boolean)) {
      std::snprintf(offset, sizeof(offset), "%+.0f", clock.num_or("offset_us", 0));
    } else {
      std::snprintf(offset, sizeof(offset), "n/a");
    }
    // Hottest sampled function for the party (--sample-hz runs only): the
    // snapshot's hot list arrives pre-sorted, entry 0 is the top leaf.
    std::string hot = "-";
    if (snap.has("hot") && !snap.at("hot").array.empty()) {
      const auto& top = snap.at("hot").array[0];
      hot = top.str_or("frame", "?");
      if (hot.size() > 36) hot = hot.substr(0, 34) + "..";
      const bool on_cpu = top.has("on_cpu") && top.at("on_cpu").boolean;
      hot += on_cpu ? "" : " [blocked]";
      const double total = snap.num_or("samples_total", 0);
      if (total > 0) {
        char pct[16];
        std::snprintf(pct, sizeof(pct), " %.0f%%",
                      100.0 * top.num_or("samples", 0) / total);
        hot += pct;
      }
    }
    std::snprintf(line, sizeof(line),
                  "%-10s %-6s %-10s %-10s %10.4f %10.4f %9s %7ld %7ld %8s %10s %8.0f  %s\n",
                  party.str_or("party", "?").c_str(), stale ? "STALE" : "live",
                  round.c_str(), snap.str_or("phase", "?").c_str(),
                  snap.num_or("d_loss", 0), snap.num_or("g_loss", 0),
                  human_bytes(snap.num_or("bytes", 0)).c_str(),
                  static_cast<long>(snap.num_or("messages", 0)),
                  static_cast<long>(snap.num_or("retries", 0)), alert_str.c_str(),
                  offset, party.num_or("age_ms", 0), hot.c_str());
    out << line;
  }
  // Loss curve from whichever party carries the driver's merged view.
  for (const auto& party : status.at("parties").array) {
    if (party.str_or("party", "") != "driver" || !party.has("loss_history")) continue;
    std::vector<double> g_losses;
    for (const auto& point : party.at("loss_history").array) {
      if (point.array.size() >= 3) g_losses.push_back(point.array[2].number);
    }
    if (!g_losses.empty()) {
      out << "\ng_loss  " << sparkline(g_losses, 60) << "  (last "
          << std::min<std::size_t>(g_losses.size(), 60) << " rounds)\n";
    }
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  int rendered = 0;
  bool ever_connected = false;
  const int max_frames = args.once ? 1 : args.frames;
  for (;;) {
    const std::string body = http_get(args.host, args.port, "/status");
    if (body.empty()) {
      if (args.once) {
        std::cerr << "gtv-top: no collector at " << args.host << ":" << args.port
                  << "\n";
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
      continue;
    }
    std::string frame;
    try {
      frame = render(gtv::obs::json::parse(body));
    } catch (const std::exception& e) {
      std::cerr << "gtv-top: bad /status payload: " << e.what() << "\n";
      return 1;
    }
    ever_connected = true;
    if (!args.no_clear && !args.once) {
      std::cout << "\x1b[H\x1b[2J";  // home + clear
    }
    std::cout << frame << std::flush;
    ++rendered;
    if (max_frames > 0 && rendered >= max_frames) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
  }
  return ever_connected ? 0 : 1;
}
